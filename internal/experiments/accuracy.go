package experiments

import (
	"fmt"

	"dbtf"
)

func init() {
	register("err-density", "Section IV-D: reconstruction error vs factor density", ErrFactorDensity)
	register("err-rank", "Section IV-D: reconstruction error vs rank", ErrRank)
	register("err-add", "Section IV-D: reconstruction error vs additive noise", ErrAdditiveNoise)
	register("err-del", "Section IV-D: reconstruction error vs destructive noise", ErrDestructiveNoise)
}

// errWorkload builds one reconstruction-error workload: a noise-free
// tensor from planted rank-r factors plus additive/destructive noise
// (Section IV-A.1: "we generate three random factor matrices, construct a
// noise-free tensor from them, and then add noise").
type errWorkload struct {
	label string
	truth *dbtf.Tensor // noise-free
	noisy *dbtf.Tensor // factorization input
	rank  int
	merge float64 // Walk'n'Merge threshold t = 1 − n_d
}

// errDefaults are the fixed middle values held while one aspect varies.
const (
	errFactorDensity = 0.1
	errRank          = 10
	errAdditive      = 0.10
	errDestructive   = 0.05
)

func errDim(cfg Config) int { return scaleDim(128, cfg.Scale) }

func makeErrWorkload(cfg Config, label string, factorDensity float64, rank int, additive, destructive float64) errWorkload {
	rng := cfg.rng()
	dim := errDim(cfg)
	truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, rank, factorDensity)
	noisy := dbtf.AddNoise(rng, truth, additive, destructive)
	return errWorkload{
		label: label,
		truth: truth,
		noisy: noisy,
		rank:  rank,
		merge: 1 - destructive,
	}
}

// runErrTable runs all methods on each workload and reports two relative
// errors per method: against the noisy input (the paper's reconstruction
// error) and against the noise-free truth (recovery).
func runErrTable(cfg Config, id, title string, workloads []errWorkload) *Table {
	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{"workload", "nnz",
			"DBTF fit", "DBTF rec",
			"BCP_ALS fit", "BCP_ALS rec",
			"WnM fit", "WnM rec"},
		Notes: []string{
			"fit = |X_noisy ⊕ X̂| / |X_noisy|; rec = |X_clean ⊕ X̂| / |X_clean| (recovery of planted structure)",
			fmt.Sprintf("fixed parameters unless swept: factor density %.2f, rank %d, additive %.0f%%, destructive %.0f%%; DBTF uses L=4 initial sets",
				errFactorDensity, errRank, errAdditive*100, errDestructive*100),
		},
	}
	for _, w := range workloads {
		cfg.progress("%s: %s (nnz %d)", id, w.label, w.noisy.NNZ())
		row := []string{w.label, fmt.Sprintf("%d", w.noisy.NNZ())}
		for _, m := range AllMethods {
			run := RunMethod(cfg, m, w.noisy, MethodOptions{Rank: w.rank, MergeThreshold: w.merge, InitialSets: 4})
			fit, rec := "-", "-"
			if !run.OOT && !run.OOM && run.Err == nil {
				fit = run.ErrCell(run.Rel)
				rec = run.ErrCell(dbtf.RelativeError(w.truth, run.Factors))
			} else {
				fit, rec = run.TimeCell(), run.TimeCell()
			}
			row = append(row, fit, rec)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ErrFactorDensity sweeps the planted factor density.
func ErrFactorDensity(cfg Config) *Table {
	cfg = cfg.withDefaults()
	var ws []errWorkload
	for _, d := range []float64{0.05, 0.1, 0.2, 0.3} {
		ws = append(ws, makeErrWorkload(cfg, fmt.Sprintf("density %.2f", d), d, errRank, errAdditive, errDestructive))
	}
	return runErrTable(cfg, "err-density", "reconstruction error vs factor matrix density", ws)
}

// ErrRank sweeps the planted (and fitted) rank.
func ErrRank(cfg Config) *Table {
	cfg = cfg.withDefaults()
	var ws []errWorkload
	for _, r := range []int{5, 10, 15, 20} {
		ws = append(ws, makeErrWorkload(cfg, fmt.Sprintf("rank %d", r), errFactorDensity, r, errAdditive, errDestructive))
	}
	return runErrTable(cfg, "err-rank", "reconstruction error vs rank", ws)
}

// ErrAdditiveNoise sweeps the additive noise level with no destructive
// noise.
func ErrAdditiveNoise(cfg Config) *Table {
	cfg = cfg.withDefaults()
	var ws []errWorkload
	for _, n := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		ws = append(ws, makeErrWorkload(cfg, fmt.Sprintf("additive %.0f%%", n*100), errFactorDensity, errRank, n, 0))
	}
	return runErrTable(cfg, "err-add", "reconstruction error vs additive noise", ws)
}

// ErrDestructiveNoise sweeps the destructive noise level with no additive
// noise.
func ErrDestructiveNoise(cfg Config) *Table {
	cfg = cfg.withDefaults()
	var ws []errWorkload
	for _, n := range []float64{0, 0.05, 0.1, 0.2} {
		ws = append(ws, makeErrWorkload(cfg, fmt.Sprintf("destructive %.0f%%", n*100), errFactorDensity, errRank, 0, n))
	}
	return runErrTable(cfg, "err-del", "reconstruction error vs destructive noise", ws)
}
