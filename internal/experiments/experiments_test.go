package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dbtf"
)

// tiny returns a config small and short enough for unit tests.
func tiny() Config {
	return Config{Budget: 5 * time.Second, Machines: 4, Seed: 1, Scale: 0.2}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig1c", "fig6", "fig7",
		"table1", "table3", "traffic",
		"err-density", "err-rank", "err-add", "err-del",
		"abl-cache", "abl-groupbits", "abl-partitioning", "abl-partitions", "abl-initsets", "abl-init",
		"ext-tucker", "ext-rankselect", "ext-wnm-mdl",
		"chaos",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	// Every registered experiment must run end to end at a tiny scale and
	// produce a well-formed table. This is the integration test for the
	// whole reproduction harness; the real measurements come from
	// cmd/dbtf-bench and the bench suite.
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	cfg := Config{Budget: 3 * time.Second, Machines: 4, Seed: 1, Scale: 0.12}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(cfg)
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("empty table: %+v", tbl)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			tbl.Format(&buf)
			if buf.Len() == 0 {
				t.Fatal("Format produced nothing")
			}
		})
	}
}

func TestRunMethodDBTF(t *testing.T) {
	cfg := tiny()
	x := dbtf.RandomTensor(cfg.rng(), 12, 12, 12, 0.1)
	run := RunMethod(cfg, DBTF, x, MethodOptions{Rank: 2})
	if run.OOT || run.OOM || run.Err != nil {
		t.Fatalf("run failed: %+v", run)
	}
	if run.TimeCell() == "o.o.t." {
		t.Fatal("TimeCell wrong for success")
	}
	if run.Stats.ShuffledBytes == 0 {
		t.Fatal("missing traffic stats")
	}
}

func TestRunMethodBudgetExceeded(t *testing.T) {
	cfg := tiny()
	cfg.Budget = time.Nanosecond
	x := dbtf.RandomTensor(cfg.rng(), 16, 16, 16, 0.1)
	run := RunMethod(cfg, DBTF, x, MethodOptions{Rank: 4})
	if !run.OOT {
		t.Fatalf("expected OOT, got %+v", run)
	}
	if run.TimeCell() != "o.o.t." {
		t.Fatalf("TimeCell = %q", run.TimeCell())
	}
}

func TestRunMethodUnknown(t *testing.T) {
	cfg := tiny()
	x := dbtf.RandomTensor(cfg.rng(), 4, 4, 4, 0.2)
	if run := RunMethod(cfg, Method("bogus"), x, MethodOptions{Rank: 1}); run.Err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note text"},
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	for _, want := range []string{"x — demo", "a", "bb", "333", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFig7ProducesSpeedups(t *testing.T) {
	cfg := tiny()
	tbl := Fig7MachineScalability(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (M=4,8,16)", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "1.00x" {
		t.Fatalf("baseline speedup cell = %q", tbl.Rows[0][2])
	}
	// M=16 must be faster in simulated time than M=4.
	if !strings.HasSuffix(tbl.Rows[2][2], "x") {
		t.Fatalf("M=16 speedup cell = %q", tbl.Rows[2][2])
	}
}

func TestTrafficValidationShapes(t *testing.T) {
	tbl := TrafficValidation(tiny())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(s string) int64 {
		var v int64
		for _, ch := range s {
			v = v*10 + int64(ch-'0')
		}
		return v
	}
	baseShuffle := parse(tbl.Rows[0][1])
	denseShuffle := parse(tbl.Rows[1][1])
	if denseShuffle <= baseShuffle {
		t.Fatal("Lemma 6 shape violated: denser tensor shuffled fewer bytes")
	}
	baseBroadcast := parse(tbl.Rows[0][2])
	m8Broadcast := parse(tbl.Rows[2][2])
	if m8Broadcast != 2*baseBroadcast {
		t.Fatalf("Lemma 7 shape violated: broadcast %d vs %d", m8Broadcast, baseBroadcast)
	}
	baseCollect := parse(tbl.Rows[0][3])
	n8Collect := parse(tbl.Rows[3][3])
	if n8Collect <= baseCollect {
		t.Fatal("Lemma 7 shape violated: more partitions did not collect more")
	}
}

func TestErrWorkloadConstruction(t *testing.T) {
	cfg := tiny()
	w := makeErrWorkload(cfg, "w", 0.2, 3, 0.1, 0.05)
	if w.noisy.NNZ() == 0 || w.truth.NNZ() == 0 {
		t.Fatal("empty workload")
	}
	if w.merge != 0.95 {
		t.Fatalf("merge threshold %v, want 0.95", w.merge)
	}
	if w.noisy.Equal(w.truth) {
		t.Fatal("noise not applied")
	}
}

func TestAblationCacheRuns(t *testing.T) {
	cfg := tiny()
	tbl := AblationCache(cfg)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] == "error" || row[2] == "error" {
			t.Fatalf("ablation run errored: %v", row)
		}
	}
}

func TestFailDetailAttribution(t *testing.T) {
	d := failDetail(BCPALS, MethodOptions{BCPALSInit: dbtf.BCPALSInitASSO}, "candidate matrix exceeds memory cap")
	for _, want := range []string{"BCP_ALS", "asso", "memory cap"} {
		if !strings.Contains(d, want) {
			t.Errorf("BCP_ALS o.o.m. detail %q missing %q", d, want)
		}
	}
	d = failDetail(DBTF, MethodOptions{Init: dbtf.InitTopFiber}, "time budget exceeded")
	for _, want := range []string{"DBTF", "topfiber", "budget"} {
		if !strings.Contains(d, want) {
			t.Errorf("DBTF o.o.t. detail %q missing %q", d, want)
		}
	}
}

func TestBCPALSInitOOMAttributionAndTopFiberSurvival(t *testing.T) {
	// A tensor whose unfolded columns push ASSO's candidate matrix over the
	// ablation's cap: the asso row must report o.o.m. (attributed in the
	// progress stream), and the topfiber row must complete on the exact
	// same input — the quadratic-blowup fix the ablation demonstrates.
	cfg := tiny()
	var progress bytes.Buffer
	cfg.Progress = &progress
	x := dbtf.RandomTensor(cfg.rng(), 8, 110, 110, 0.01) // 12100² bits ≈ 18 MiB > 16 MiB cap
	row := runBCPALSInit(cfg, x, dbtf.BCPALSInitASSO)
	if row[0] != "o.o.m." {
		t.Fatalf("asso init row = %v, want o.o.m.", row)
	}
	if out := progress.String(); !strings.Contains(out, "init=asso") {
		t.Fatalf("o.o.m. progress line does not attribute the init stage: %q", out)
	}
	row = runBCPALSInit(cfg, x, dbtf.BCPALSInitTopFiber)
	if row[0] == "o.o.m." || row[0] == "error" {
		t.Fatalf("topfiber init row = %v, want success on the input that o.o.m.s ASSO", row)
	}
}
