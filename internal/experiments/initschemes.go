package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dbtf"
	"dbtf/internal/asso"
)

func init() {
	register("abl-init", "Ablation: initialization schemes — DBTF fiber/random/topfiber, BCP_ALS asso/topfiber (ISSUE 10)", AblationInitSchemes)
}

// bcpalsCandidateCap is the ASSO candidate-matrix cap used by the init
// ablation: scaled down from the default 1 GiB exactly like the workloads
// are scaled down from the paper's, so the quadratic blowup's cliff falls
// inside the sweep instead of past it. The candidate matrix for a d×d×d
// tensor is (d²)² bits per mode, so 16 MiB admits d = 96 (≈ 10.6 MiB) and
// rejects d = 128 (≈ 33.5 MiB).
const bcpalsCandidateCap = 16 << 20

// AblationInitSchemes compares initialization schemes on both layers the
// topfiber package wires into: DBTF's initial factor sets (fiber-sample
// vs random-L vs topfiber, measured as iterations-to-convergence and
// wall time) and BCP_ALS's per-mode init (quadratic ASSO vs near-linear
// topfiber, measured across the sizes where ASSO's candidate matrix
// crosses the memory cap).
func AblationInitSchemes(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "abl-init",
		Title:  "initialization schemes: data-aware seeds vs random/quadratic (rank 6, planted + noise)",
		Header: []string{"method", "init", "I=J=K", "wall", "iters", "fit error", "relative"},
		Notes: []string{
			"DBTF rows run to convergence (MaxIter 10): iters is iterations-to-convergence from each seed",
			"random-L seeds carry no data information; on sparse tensors the greedy update can collapse them to all-zero factors",
			fmt.Sprintf("BCP_ALS rows cap ASSO candidate matrices at %d MiB (scaled from the 1 GiB default like the workloads)", bcpalsCandidateCap>>20),
			"o.o.m. marks ASSO's quadratic candidate matrix exceeding the cap; topfiber materializes nothing quadratic",
		},
	}

	for _, base := range []int{48, 64} {
		dim := scaleDim(base, cfg.Scale)
		rng := cfg.rng()
		truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, 6, 0.15)
		x := dbtf.AddNoise(rng, truth, 0.05, 0.05)
		for _, scheme := range []dbtf.InitScheme{dbtf.InitFiberSample, dbtf.InitRandom, dbtf.InitTopFiber} {
			cfg.progress("abl-init: DBTF I=J=K=%d init=%v", dim, scheme)
			res, wall, oot, err := runDBTFVariant(cfg, x, dbtf.Options{Rank: 6, Init: scheme})
			timeCell, _, errCell := variantCells(res, wall, oot, err)
			iters, rel := "-", "-"
			if res != nil {
				iters = fmt.Sprintf("%d", res.Iterations)
				rel = fmt.Sprintf("%.3f", res.RelativeError)
			}
			t.Rows = append(t.Rows, []string{"DBTF", scheme.String(), fmt.Sprintf("%d", dim), timeCell, iters, errCell, rel})
		}
	}

	for _, base := range []int{64, 96, 128} {
		dim := scaleDim(base, cfg.Scale)
		rng := cfg.rng()
		truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, 6, 0.15)
		x := dbtf.AddNoise(rng, truth, 0.05, 0.05)
		for _, init := range []dbtf.BCPALSInit{dbtf.BCPALSInitASSO, dbtf.BCPALSInitTopFiber} {
			cfg.progress("abl-init: BCP_ALS I=J=K=%d init=%v", dim, init)
			row := runBCPALSInit(cfg, x, init)
			t.Rows = append(t.Rows, append([]string{"BCP_ALS", init.String(), fmt.Sprintf("%d", dim)}, row...))
		}
	}
	return t
}

// runBCPALSInit runs BCP_ALS under the budget and the ablation's candidate
// cap, returning the wall/iters/error/relative cells with o.o.m. and
// o.o.t. attributed exactly like RunMethod does.
func runBCPALSInit(cfg Config, x *dbtf.Tensor, init dbtf.BCPALSInit) []string {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
	defer cancel()
	start := time.Now()
	res, err := dbtf.FactorizeBCPALS(ctx, x, dbtf.BCPALSOptions{
		Rank:              6,
		Init:              init,
		MaxCandidateBytes: bcpalsCandidateCap,
	})
	wall := time.Since(start)
	switch {
	case errors.Is(err, asso.ErrCandidateMemory):
		cfg.progress("  %-13s %-10s [%s init=%s: %v]", BCPALS, "o.o.m.", BCPALS, init, err)
		return []string{"o.o.m.", "-", "-", "-"}
	case errors.Is(err, context.DeadlineExceeded):
		cfg.progress("  %-13s %-10s [%s init=%s: time budget exceeded]", BCPALS, "o.o.t.", BCPALS, init)
		return []string{"o.o.t.", "-", "-", "-"}
	case err != nil:
		cfg.progress("  %-13s %-10s [%v]", BCPALS, "error", err)
		return []string{"error", "-", "-", "-"}
	}
	rel := "-"
	if x.NNZ() > 0 {
		rel = fmt.Sprintf("%.3f", float64(res.Error)/float64(x.NNZ()))
	}
	cfg.progress("  %-13s %-10s rel=%s", BCPALS, formatDuration(wall), rel)
	return []string{formatDuration(wall), fmt.Sprintf("%d", res.Iterations), fmt.Sprintf("%d", res.Error), rel}
}
