package experiments

import (
	"context"
	"fmt"
	"time"

	"dbtf"
)

func init() {
	register("fig1a", "Figure 1(a): running time vs dimensionality (density 0.01, rank 10)", Fig1aDimensionality)
	register("fig1b", "Figure 1(b): running time vs density (I=J=K=2^7, rank 10)", Fig1bDensity)
	register("fig1c", "Figure 1(c): running time vs rank (I=J=K=2^7, density 0.05)", Fig1cRank)
	register("fig6", "Figure 6: running time on real-world dataset stand-ins", Fig6RealWorld)
	register("fig7", "Figure 7: machine scalability T4/TM (planted-factor tensor, rank 10)", Fig7MachineScalability)
	register("table1", "Table I: scalability comparison summary (derived from Figure 1 sweeps)", Table1Summary)
	register("table3", "Table III: dataset stand-in summary", Table3Datasets)
	register("traffic", "Lemmas 6-7: shuffled/broadcast/collected traffic vs |X|, M, N", TrafficValidation)
}

// fig1Rank is the rank used by the Figure 1(a)/(b) sweeps (the paper's 10).
const fig1Rank = 10

func scaleDim(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 8 {
		n = 8
	}
	return n
}

// Fig1aDimensionality sweeps the cube dimensionality (paper: 2^6–2^13; we
// sweep 2^4–2^8 at Scale 1) and compares all three methods.
func Fig1aDimensionality(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig1a",
		Title:  "running time vs dimensionality (density 0.01, rank 10)",
		Header: []string{"I=J=K", "nnz", "DBTF", "BCP_ALS", "Walk'n'Merge"},
		Notes: []string{
			fmt.Sprintf("per-run budget %v stands in for the paper's 6-hour wall", cfg.Budget),
			"paper sweeps 2^6..2^13 on a 17-node cluster; dimensions here are scaled down",
		},
	}
	for _, base := range []int{16, 32, 64, 128, 256} {
		dim := scaleDim(base, cfg.Scale)
		x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.01)
		cfg.progress("fig1a: I=J=K=%d (nnz %d)", dim, x.NNZ())
		row := []string{fmt.Sprintf("%d", dim), fmt.Sprintf("%d", x.NNZ())}
		for _, m := range AllMethods {
			row = append(row, RunMethod(cfg, m, x, MethodOptions{Rank: fig1Rank, FullIterations: true}).TimeCell())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig1bDensity sweeps the tensor density at fixed dimensionality (paper:
// 0.01–0.3 at 2^8; we use 2^7 at Scale 1).
func Fig1bDensity(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(128, cfg.Scale)
	t := &Table{
		ID:     "fig1b",
		Title:  fmt.Sprintf("running time vs density (I=J=K=%d, rank 10)", dim),
		Header: []string{"density", "nnz", "DBTF", "BCP_ALS", "Walk'n'Merge"},
		Notes:  []string{fmt.Sprintf("per-run budget %v", cfg.Budget)},
	}
	for _, density := range []float64{0.01, 0.05, 0.1, 0.2, 0.3} {
		x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, density)
		cfg.progress("fig1b: density %.2f (nnz %d)", density, x.NNZ())
		row := []string{fmt.Sprintf("%.2f", density), fmt.Sprintf("%d", x.NNZ())}
		for _, m := range AllMethods {
			row = append(row, RunMethod(cfg, m, x, MethodOptions{Rank: fig1Rank, FullIterations: true}).TimeCell())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig1cRank sweeps the decomposition rank (paper: 10–60).
func Fig1cRank(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(128, cfg.Scale)
	x := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.05)
	t := &Table{
		ID:     "fig1c",
		Title:  fmt.Sprintf("running time vs rank (I=J=K=%d, density 0.05)", dim),
		Header: []string{"rank", "DBTF", "BCP_ALS", "Walk'n'Merge"},
		Notes: []string{
			fmt.Sprintf("per-run budget %v; cache group bits V=15, so ranks above 15 split the tables", cfg.Budget),
			"Walk'n'Merge is rank-oblivious: its block discovery cost is identical across ranks",
		},
	}
	for _, rank := range []int{10, 20, 30, 40, 50, 60} {
		cfg.progress("fig1c: rank %d", rank)
		row := []string{fmt.Sprintf("%d", rank)}
		for _, m := range AllMethods {
			row = append(row, RunMethod(cfg, m, x, MethodOptions{Rank: rank, FullIterations: true}).TimeCell())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6RealWorld compares the methods on the six Table III stand-ins.
func Fig6RealWorld(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig6",
		Title:  "running time on real-world dataset stand-ins (rank 10)",
		Header: []string{"dataset", "shape", "nnz", "DBTF", "BCP_ALS", "Walk'n'Merge"},
		Notes: []string{
			fmt.Sprintf("per-run budget %v stands in for the paper's 12-hour wall", cfg.Budget),
			"datasets are synthetic stand-ins with the Table III families' shapes (see DESIGN.md §5)",
		},
	}
	for _, d := range dbtf.StandinDatasets(cfg.rng(), cfg.Scale) {
		i, j, k := d.X.Dims()
		cfg.progress("fig6: %s %dx%dx%d (nnz %d)", d.Name, i, j, k, d.X.NNZ())
		row := []string{d.Name, fmt.Sprintf("%dx%dx%d", i, j, k), fmt.Sprintf("%d", d.X.NNZ())}
		for _, m := range AllMethods {
			row = append(row, RunMethod(cfg, m, d.X, MethodOptions{Rank: fig1Rank, MergeThreshold: 0.6, FullIterations: true}).TimeCell())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7MachineScalability sweeps the simulated machine count and reports
// T4/TM speedups from the simulated makespan (the host does not have 16
// physical cores; see DESIGN.md §5). The workload is a planted-factor
// tensor: its factor masks stay populated across iterations, so the
// per-stage compute reflects sustained update work, as on the paper's
// 2^12 tensor. Uniform random tensors collapse to near-empty factors
// after one sweep, leaving only fixed stage overhead with nothing to
// parallelize.
func Fig7MachineScalability(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(512, cfg.Scale)
	rng := cfg.rng()
	truth, _ := dbtf.TensorFromRandomFactors(rng, dim, dim, dim, fig1Rank, 0.2)
	x := dbtf.AddNoise(rng, truth, 0.05, 0.05)
	t := &Table{
		ID:     "fig7",
		Title:  fmt.Sprintf("machine scalability (I=J=K=%d planted factors, nnz %d, rank 10)", dim, x.NNZ()),
		Header: []string{"machines", "sim time", "speedup T4/TM"},
		Notes: []string{
			"speedups use the cluster's simulated makespan: per-task measured cost on M logical machines plus the network model",
			"the paper reports 2.2x from 4 to 16 machines; sublinearity comes from driver-side column commits, per-stage latency, and the driver's collect downlink",
		},
	}
	var t4 time.Duration
	for _, machines := range []int{4, 8, 16} {
		cfg.progress("fig7: %d machines", machines)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.Budget)
		res, err := dbtf.Factorize(ctx, x, dbtf.Options{
			Rank: fig1Rank, Machines: machines, Partitions: 48,
			MaxIter: 3, MinIter: 3, Seed: cfg.Seed,
			Tracer: cfg.Tracer,
		})
		cancel()
		if err != nil {
			cell := "error"
			if ctx.Err() != nil {
				cell = "o.o.t."
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", machines), cell, "-"})
			continue
		}
		if machines == 4 {
			t4 = res.SimTime
		}
		speedup := "-"
		if t4 > 0 && res.SimTime > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(t4)/float64(res.SimTime))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", machines), formatDuration(res.SimTime), speedup,
		})
	}
	return t
}

// Table1Summary reruns compact versions of the Figure 1 sweeps and derives
// the qualitative scalability verdicts of Table I.
func Table1Summary(cfg Config) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "table1",
		Title:  "scalability comparison (derived: High = largest sweep point within budget)",
		Header: []string{"method", "dimensionality", "density", "rank", "distributed"},
	}
	dim := scaleDim(256, cfg.Scale)
	big := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.01)
	densDim := scaleDim(128, cfg.Scale)
	dense := dbtf.RandomTensor(cfg.rng(), densDim, densDim, densDim, 0.3)
	rankX := dbtf.RandomTensor(cfg.rng(), densDim, densDim, densDim, 0.05)

	verdict := func(r Run) string {
		if r.OOT || r.OOM || r.Err != nil {
			return "Low"
		}
		return "High"
	}
	distributed := map[Method]string{DBTF: "Yes", BCPALS: "No", WalkNMerge: "No"}
	for _, m := range AllMethods {
		cfg.progress("table1: %s", m)
		t.Rows = append(t.Rows, []string{
			string(m),
			verdict(RunMethod(cfg, m, big, MethodOptions{Rank: fig1Rank, FullIterations: true})),
			verdict(RunMethod(cfg, m, dense, MethodOptions{Rank: fig1Rank, FullIterations: true})),
			verdict(RunMethod(cfg, m, rankX, MethodOptions{Rank: 60, FullIterations: true})),
			distributed[m],
		})
	}
	t.Notes = append(t.Notes,
		"paper's Table I: Walk'n'Merge = Low/Low/High, BCP_ALS = Low/High/High, DBTF = High/High/High")
	return t
}

// Table3Datasets summarizes the generated stand-ins next to the paper's
// original dataset sizes.
func Table3Datasets(cfg Config) *Table {
	cfg = cfg.withDefaults()
	originals := map[string]string{
		"Facebook":     "64K x 64K x 870, 1.5M nnz",
		"DBLP":         "418K x 3.5K x 49, 1.3M nnz",
		"CAIDA-DDoS-S": "9K x 9K x 4K, 22M nnz",
		"CAIDA-DDoS-L": "9K x 9K x 393K, 331M nnz",
		"NELL-S":       "15K x 15K x 29K, 77M nnz",
		"NELL-L":       "112K x 112K x 213K, 18M nnz",
	}
	t := &Table{
		ID:     "table3",
		Title:  "dataset stand-ins vs the paper's originals",
		Header: []string{"dataset", "modes", "stand-in shape", "stand-in nnz", "paper original"},
	}
	for _, d := range dbtf.StandinDatasets(cfg.rng(), cfg.Scale) {
		i, j, k := d.X.Dims()
		t.Rows = append(t.Rows, []string{
			d.Name, d.Modes,
			fmt.Sprintf("%dx%dx%d", i, j, k),
			fmt.Sprintf("%d", d.X.NNZ()),
			originals[d.Name],
		})
	}
	return t
}

// TrafficValidation checks the shapes of Lemma 6 (shuffle ∝ |X|) and
// Lemma 7 (broadcast ∝ M, collect ∝ N·R·I) on live runs.
func TrafficValidation(cfg Config) *Table {
	cfg = cfg.withDefaults()
	dim := scaleDim(64, cfg.Scale)
	t := &Table{
		ID:     "traffic",
		Title:  "cluster traffic vs Lemmas 6-7",
		Header: []string{"workload", "shuffled", "broadcast", "collected"},
		Notes: []string{
			"Lemma 6: shuffled bytes scale with |X| (rows 1-2)",
			"Lemma 7: broadcast bytes scale with M (rows 1,3); collected bytes scale with N (rows 1,4)",
		},
	}
	base := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.02)
	dense := dbtf.RandomTensor(cfg.rng(), dim, dim, dim, 0.2)
	row := func(label string, x *dbtf.Tensor, machines, partitions int) {
		c := cfg
		c.Machines = machines
		cfg.progress("traffic: %s", label)
		r := RunMethod(c, DBTF, x, MethodOptions{Rank: 4, Partitions: partitions})
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", r.Stats.ShuffledBytes),
			fmt.Sprintf("%d", r.Stats.BroadcastBytes),
			fmt.Sprintf("%d", r.Stats.CollectedBytes),
		})
	}
	row("base (M=4, N=4)", base, 4, 4)
	row("10x denser", dense, 4, 4)
	row("M=8", base, 8, 4)
	row("N=8", base, 4, 8)
	return t
}
