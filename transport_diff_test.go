package dbtf_test

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dbtf"
)

// These tests pin the transport guarantee end to end: a run over real
// dbtf-worker OS processes speaking the TCP wire protocol must produce
// bit-for-bit the same factors as the simulated in-process cluster for
// the same seed — including when a worker process is killed mid-run and
// the recovery protocol reroutes its partitions over the socket.

var (
	workerBinOnce sync.Once
	workerBinPath string
	workerBinErr  error
)

// workerBinary builds cmd/dbtf-worker once per test process and returns
// the binary path.
func workerBinary(t *testing.T) string {
	t.Helper()
	workerBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dbtf-worker-bin")
		if err != nil {
			workerBinErr = err
			return
		}
		workerBinPath = filepath.Join(dir, "dbtf-worker")
		out, err := exec.Command("go", "build", "-o", workerBinPath, "./cmd/dbtf-worker").CombinedOutput()
		if err != nil {
			workerBinErr = fmt.Errorf("building dbtf-worker: %v\n%s", err, out)
		}
	})
	if workerBinErr != nil {
		t.Fatal(workerBinErr)
	}
	return workerBinPath
}

// workerProc is one spawned dbtf-worker OS process.
type workerProc struct {
	Addr string
	cmd  *exec.Cmd
}

// Kill terminates the worker process immediately — the real-machine
// equivalent of the simulated cluster's machine loss.
func (w *workerProc) Kill(t *testing.T) {
	t.Helper()
	if w.cmd == nil {
		return
	}
	if err := w.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing worker %s: %v", w.Addr, err)
	}
	// Kill always surfaces as a non-nil Wait error; reap the process and
	// move on.
	_ = w.cmd.Wait()
	w.cmd = nil
}

// startWorkerProc launches a dbtf-worker on listen (use 127.0.0.1:0 for
// an ephemeral port) and harvests the bound address from its stdout.
// extraArgs are appended to the command line (e.g. "-threads", "4").
func startWorkerProc(t *testing.T, listen string, extraArgs ...string) *workerProc {
	t.Helper()
	args := append([]string{"-listen", listen, "-q"}, extraArgs...)
	cmd := exec.Command(workerBinary(t), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &workerProc{cmd: cmd}
	t.Cleanup(func() { w.Kill(t) })

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		const prefix = "dbtf-worker listening on "
		if !ok || !strings.HasPrefix(line, prefix) {
			t.Fatalf("worker printed %q, want %q address line", line, prefix)
		}
		w.Addr = strings.TrimPrefix(line, prefix)
	case <-time.After(10 * time.Second):
		t.Fatal("worker never printed its listen address")
	}
	return w
}

func startWorkerProcs(t *testing.T, n int, extraArgs ...string) ([]*workerProc, []string) {
	t.Helper()
	procs := make([]*workerProc, n)
	addrs := make([]string, n)
	for i := range procs {
		procs[i] = startWorkerProc(t, "127.0.0.1:0", extraArgs...)
		addrs[i] = procs[i].Addr
	}
	return procs, addrs
}

// TestTransportTCPIdenticalToSimulated is the headline differential: for
// fixed seeds, simulated and multi-process runs agree bit-for-bit on the
// factors and on the formula-based message accounting.
func TestTransportTCPIdenticalToSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const machines = 3
	_, addrs := startWorkerProcs(t, machines)
	for seed := int64(1); seed <= 2; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 5, Seed: seed, InitialSets: 2}
		sim, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: simulated: %v", seed, err)
		}
		opt.Workers = addrs
		tcp, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: tcp: %v", seed, err)
		}
		assertIdentical(t, seed, "tcp transport", sim, tcp)
		if len(tcp.IterationErrors) != len(sim.IterationErrors) {
			t.Fatalf("seed %d: iteration trajectories differ in length: %d vs %d",
				seed, len(tcp.IterationErrors), len(sim.IterationErrors))
		}
		for i := range tcp.IterationErrors {
			if tcp.IterationErrors[i] != sim.IterationErrors[i] {
				t.Errorf("seed %d: iteration %d error %d over tcp, %d simulated",
					seed, i, tcp.IterationErrors[i], sim.IterationErrors[i])
			}
		}
		// The traffic model is a property of the algorithm, not the
		// backend: stage, task, and byte accounting must agree exactly.
		ts, ss := tcp.Stats, sim.Stats
		if ts.Stages != ss.Stages || ts.Tasks != ss.Tasks {
			t.Errorf("seed %d: stages/tasks %d/%d over tcp, %d/%d simulated",
				seed, ts.Stages, ts.Tasks, ss.Stages, ss.Tasks)
		}
		if ts.ShuffledBytes != ss.ShuffledBytes || ts.BroadcastBytes != ss.BroadcastBytes || ts.CollectedBytes != ss.CollectedBytes {
			t.Errorf("seed %d: traffic %d/%d/%d over tcp, %d/%d/%d simulated",
				seed, ts.ShuffledBytes, ts.BroadcastBytes, ts.CollectedBytes,
				ss.ShuffledBytes, ss.BroadcastBytes, ss.CollectedBytes)
		}
	}
}

// TestTransportTCPThreadedWorkersIdentical runs the same differential with
// every worker process started with -threads 4: batched eval stages fan
// out across each worker's pool, and the factors, error trajectory, and
// the formula-based traffic accounting must still match the sequential
// simulated cluster bit for bit — the socket-level form of the
// ThreadsPerMachine determinism guarantee.
func TestTransportTCPThreadedWorkersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const machines = 3
	_, addrs := startWorkerProcs(t, machines, "-threads", "4")
	for seed := int64(5); seed <= 6; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 5, Seed: seed, InitialSets: 2}
		sim, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: simulated: %v", seed, err)
		}
		opt.Workers = addrs
		tcp, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: tcp (threaded workers): %v", seed, err)
		}
		assertIdentical(t, seed, "tcp transport with threaded workers", sim, tcp)
		if fmt.Sprint(tcp.IterationErrors) != fmt.Sprint(sim.IterationErrors) {
			t.Errorf("seed %d: iteration trajectory %v over threaded tcp, %v simulated",
				seed, tcp.IterationErrors, sim.IterationErrors)
		}
		ts, ss := tcp.Stats, sim.Stats
		if ts.Stages != ss.Stages || ts.Tasks != ss.Tasks {
			t.Errorf("seed %d: stages/tasks %d/%d over threaded tcp, %d/%d simulated",
				seed, ts.Stages, ts.Tasks, ss.Stages, ss.Tasks)
		}
		if ts.ShuffledBytes != ss.ShuffledBytes || ts.BroadcastBytes != ss.BroadcastBytes || ts.CollectedBytes != ss.CollectedBytes {
			t.Errorf("seed %d: traffic %d/%d/%d over threaded tcp, %d/%d/%d simulated",
				seed, ts.ShuffledBytes, ts.BroadcastBytes, ts.CollectedBytes,
				ss.ShuffledBytes, ss.BroadcastBytes, ss.CollectedBytes)
		}
	}
}

// TestTransportTCPTopFiberInitIdentical pins the new deterministic
// initializer across backends: a topfiber-seeded run over real worker
// processes must match the simulated cluster bit for bit — factors,
// iteration trajectory, and stage/task/traffic accounting. The init runs
// on the driver (it consumes no RNG draws and no cluster stages), so any
// divergence here means the transport leaked into the seeding.
func TestTransportTCPTopFiberInitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const machines = 3
	_, addrs := startWorkerProcs(t, machines)
	for seed := int64(7); seed <= 8; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 5, Seed: seed, Init: dbtf.InitTopFiber}
		sim, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: simulated: %v", seed, err)
		}
		opt.Workers = addrs
		tcp, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: tcp: %v", seed, err)
		}
		assertIdentical(t, seed, "tcp transport with topfiber init", sim, tcp)
		if fmt.Sprint(tcp.IterationErrors) != fmt.Sprint(sim.IterationErrors) {
			t.Errorf("seed %d: iteration trajectory %v over tcp, %v simulated",
				seed, tcp.IterationErrors, sim.IterationErrors)
		}
		ts, ss := tcp.Stats, sim.Stats
		if ts.Stages != ss.Stages || ts.Tasks != ss.Tasks {
			t.Errorf("seed %d: stages/tasks %d/%d over tcp, %d/%d simulated",
				seed, ts.Stages, ts.Tasks, ss.Stages, ss.Tasks)
		}
		if ts.ShuffledBytes != ss.ShuffledBytes || ts.BroadcastBytes != ss.BroadcastBytes || ts.CollectedBytes != ss.CollectedBytes {
			t.Errorf("seed %d: traffic %d/%d/%d over tcp, %d/%d/%d simulated",
				seed, ts.ShuffledBytes, ts.BroadcastBytes, ts.CollectedBytes,
				ss.ShuffledBytes, ss.BroadcastBytes, ss.CollectedBytes)
		}
		// Data-determined seeding: the same run with a different seed must
		// still produce the same factors (the RNG is never consulted).
		opt.Workers = nil
		opt.Seed = seed + 100
		reseeded, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatalf("seed %d: reseeded: %v", seed, err)
		}
		assertIdentical(t, seed, "topfiber under a different seed", sim, reseeded)
	}
}

// TestTransportTCPTopFiberThreadedWorkersIdentical repeats the topfiber
// differential with -threads 4 worker processes: the init rows of the
// bench suite run exactly this configuration in CI.
func TestTransportTCPTopFiberThreadedWorkersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const (
		machines = 3
		seed     = int64(9)
	)
	_, addrs := startWorkerProcs(t, machines, "-threads", "4")
	x := diffTensor(t, seed)
	opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 5, Seed: seed, Init: dbtf.InitTopFiber}
	sim, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("simulated: %v", err)
	}
	opt.Workers = addrs
	tcp, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("tcp (threaded workers): %v", err)
	}
	assertIdentical(t, seed, "tcp transport with threaded workers and topfiber init", sim, tcp)
	if fmt.Sprint(tcp.IterationErrors) != fmt.Sprint(sim.IterationErrors) {
		t.Errorf("iteration trajectory %v over threaded tcp, %v simulated",
			tcp.IterationErrors, sim.IterationErrors)
	}
}

// TestTransportTCPSurvivesWorkerKill kills a live worker process after the
// first iteration. The coordinator must detect the loss, reroute the dead
// machine's partitions to the ring successor, and still produce factors
// bit-identical to the simulated cluster's.
func TestTransportTCPSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const (
		machines = 3
		seed     = int64(3)
	)
	procs, addrs := startWorkerProcs(t, machines)
	x := diffTensor(t, seed)
	opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 6, Seed: seed}
	sim, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("simulated: %v", err)
	}

	killed := false
	opt.Workers = addrs
	opt.Trace = func(format string, args ...any) {
		// The driver blocks in this callback between stages; killing here
		// makes the loss land mid-run at a deterministic point.
		if !killed && strings.HasPrefix(fmt.Sprintf(format, args...), "initial set") {
			killed = true
			procs[1].Kill(t)
		}
	}
	tcp, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("tcp with worker kill: %v", err)
	}
	if !killed {
		t.Fatal("trace callback never saw the initial-set line; the kill was not injected")
	}
	assertIdentical(t, seed, "tcp transport with worker kill", sim, tcp)
	if tcp.Stats.MachineLosses < 1 {
		t.Errorf("Stats.MachineLosses = %d after killing a worker, want >= 1", tcp.Stats.MachineLosses)
	}
	if tcp.Stats.Recoveries < 1 {
		t.Errorf("Stats.Recoveries = %d after killing a worker, want >= 1", tcp.Stats.Recoveries)
	}
}

// TestTransportTCPWorkerRestartRejoins additionally restarts the killed
// worker on the same port. Whether the rejoin lands before the run ends is
// timing-dependent, so only the bit-identity is asserted; the rejoin path
// itself is pinned deterministically in internal/transport/tcp's tests.
func TestTransportTCPWorkerRestartRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	const (
		machines = 3
		seed     = int64(4)
	)
	procs, addrs := startWorkerProcs(t, machines)
	x := diffTensor(t, seed)
	opt := dbtf.Options{Rank: 4, Machines: machines, MaxIter: 8, Seed: seed}
	sim, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("simulated: %v", err)
	}

	killed := false
	opt.Workers = addrs
	opt.Trace = func(format string, args ...any) {
		if !killed && strings.HasPrefix(fmt.Sprintf(format, args...), "initial set") {
			killed = true
			procs[2].Kill(t)
			// Relaunch on the same address; the coordinator's Membership
			// sweep redials it and replays the state history.
			procs[2] = startWorkerProc(t, addrs[2])
		}
	}
	tcp, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("tcp with worker restart: %v", err)
	}
	if !killed {
		t.Fatal("trace callback never saw the initial-set line; the kill was not injected")
	}
	assertIdentical(t, seed, "tcp transport with worker restart", sim, tcp)
	if tcp.Stats.MachineLosses < 1 {
		t.Errorf("Stats.MachineLosses = %d after killing a worker, want >= 1", tcp.Stats.MachineLosses)
	}
	t.Logf("losses=%d recoveries=%d (recoveries > losses ⇒ the restart rejoined in time)",
		tcp.Stats.MachineLosses, tcp.Stats.Recoveries)
}
