package dbtf_test

import (
	"context"
	"fmt"
	"log"

	"dbtf"
)

// ExampleFactorize decomposes a small Boolean tensor holding one dense
// block; rank 1 suffices for an exact fit.
func ExampleFactorize() {
	var coords []dbtf.Coord
	for i := 0; i < 4; i++ {
		for j := 2; j < 6; j++ {
			for k := 1; k < 5; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
	}
	x, err := dbtf.TensorFromCoords(8, 8, 8, coords)
	if err != nil {
		log.Fatal(err)
	}

	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
		Rank:        1,
		Machines:    2,
		InitialSets: 2,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("error:", res.Error)
	fmt.Println("rows of the block:", res.A.Column(0).Indices())
	// Output:
	// error: 0
	// rows of the block: [0 1 2 3]
}

// ExampleSelectRank lets minimum description length choose the rank for a
// tensor with two planted blocks.
func ExampleSelectRank() {
	var coords []dbtf.Coord
	addBlock := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := lo; j < hi; j++ {
				for k := lo; k < hi; k++ {
					coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	addBlock(0, 6)
	addBlock(8, 14)
	x, err := dbtf.TensorFromCoords(14, 14, 14, coords)
	if err != nil {
		log.Fatal(err)
	}

	sel, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{
		Machines: 2, InitialSets: 4, Seed: 1,
	}, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected rank:", sel.Rank)
	fmt.Println("exact fit:", sel.Result.Error == 0)
	// Output:
	// selected rank: 2
	// exact fit: true
}

// ExampleFactors_ReconstructError scores a factor set against the tensor
// it was planted from.
func ExampleFactors_ReconstructError() {
	var coords []dbtf.Coord
	for i := 0; i < 3; i++ {
		coords = append(coords, dbtf.Coord{I: i, J: i, K: i})
	}
	x, err := dbtf.TensorFromCoords(3, 3, 3, coords)
	if err != nil {
		log.Fatal(err)
	}
	// The superdiagonal is rank 3: one component per diagonal cell.
	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
		Rank: 3, Machines: 2, InitialSets: 4, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("error:", res.ReconstructError(x))
	// Output:
	// error: 0
}
