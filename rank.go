package dbtf

import (
	"context"
	"fmt"
	"math"

	"dbtf/internal/mdl"
)

// DescriptionLength returns the minimum-description-length score of a
// factor set for x, in bits: the cost of encoding the factors plus the
// cost of the error cells correcting their reconstruction. Lower is
// better; compare against BaselineDescriptionLength to decide whether the
// factorization is worth keeping at all.
func DescriptionLength(x *Tensor, f Factors) float64 {
	return mdl.TotalBits(x, f.A, f.B, f.C)
}

// BaselineDescriptionLength returns the description length of x under the
// empty model (every nonzero transmitted as an error cell).
func BaselineDescriptionLength(x *Tensor) float64 {
	return mdl.BaselineBits(x)
}

// RankSelection reports the outcome of SelectRank.
type RankSelection struct {
	// Rank is the selected rank.
	Rank int
	// Result is the factorization at the selected rank.
	Result *Result
	// Bits maps each tried rank (index r-1 for rank r) to its description
	// length.
	Bits []float64
	// BaselineBits is the empty-model description length; when every
	// tried rank exceeds it the data has no exploitable Boolean structure.
	BaselineBits float64
}

// SelectRank chooses a decomposition rank by minimum description length:
// it factorizes x at every rank from 1 to maxRank (with the given options
// otherwise unchanged) and returns the rank whose factorization
// compresses the tensor best. The search stops early after the score
// worsens on two consecutive ranks. opt.Rank is ignored.
func SelectRank(ctx context.Context, x *Tensor, opt Options, maxRank int) (*RankSelection, error) {
	if maxRank < 1 || maxRank > MaxRank {
		return nil, fmt.Errorf("dbtf: maxRank %d outside [1,%d]", maxRank, MaxRank)
	}
	sel := &RankSelection{BaselineBits: mdl.BaselineBits(x)}
	best := math.Inf(1)
	worse := 0
	for r := 1; r <= maxRank; r++ {
		o := opt
		o.Rank = r
		res, err := Factorize(ctx, x, o)
		if err != nil {
			return nil, fmt.Errorf("dbtf: rank %d: %w", r, err)
		}
		bits := DescriptionLength(x, res.Factors)
		sel.Bits = append(sel.Bits, bits)
		if bits < best {
			best = bits
			sel.Rank = r
			sel.Result = res
			worse = 0
		} else {
			worse++
			if worse >= 2 {
				break
			}
		}
	}
	return sel, nil
}
