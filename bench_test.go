// Benchmarks regenerating every table and figure of the paper's
// evaluation section, one testing.B benchmark per artifact, plus the
// ablation benches DESIGN.md calls out and micro-benchmarks of the public
// API. Each bench runs the corresponding experiment from
// internal/experiments at a reduced scale so the whole suite completes in
// minutes; cmd/dbtf-bench runs the same experiments at full scale.
//
// The formatted tables are printed once per benchmark (under -bench) so a
// `go test -bench=. -benchmem` log doubles as the reproduction record for
// EXPERIMENTS.md.
package dbtf_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"dbtf"
	"dbtf/internal/experiments"
)

// benchConfig is the reduced-scale configuration the bench suite uses.
func benchConfig() experiments.Config {
	return experiments.Config{
		Budget:   8 * time.Second,
		Machines: 16,
		Seed:     1,
		Scale:    0.35,
	}
}

var printOnce sync.Map

// runExperiment executes a registered experiment once per benchmark
// iteration and prints its table the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tbl := e.Run(cfg)
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Fprintln(os.Stderr)
			tbl.Format(os.Stderr)
		}
	}
}

// Figure 1: data scalability of DBTF vs BCP_ALS vs Walk'n'Merge.

func BenchmarkFig1aDimensionality(b *testing.B) { runExperiment(b, "fig1a") }
func BenchmarkFig1bDensity(b *testing.B)        { runExperiment(b, "fig1b") }
func BenchmarkFig1cRank(b *testing.B)           { runExperiment(b, "fig1c") }

// Table I: qualitative scalability summary derived from the sweeps.

func BenchmarkTable1Summary(b *testing.B) { runExperiment(b, "table1") }

// Table III: dataset stand-ins.

func BenchmarkTable3Datasets(b *testing.B) { runExperiment(b, "table3") }

// Figure 6: real-world dataset stand-in comparison.

func BenchmarkFig6RealWorld(b *testing.B) { runExperiment(b, "fig6") }

// Figure 7: machine scalability from the simulated makespan.

func BenchmarkFig7MachineScalability(b *testing.B) { runExperiment(b, "fig7") }

// Section IV-D: reconstruction error sweeps.

func BenchmarkErrFactorDensity(b *testing.B)    { runExperiment(b, "err-density") }
func BenchmarkErrRank(b *testing.B)             { runExperiment(b, "err-rank") }
func BenchmarkErrAdditiveNoise(b *testing.B)    { runExperiment(b, "err-add") }
func BenchmarkErrDestructiveNoise(b *testing.B) { runExperiment(b, "err-del") }

// Lemmas 6-7: traffic-volume validation.

func BenchmarkTrafficValidation(b *testing.B) { runExperiment(b, "traffic") }

// Ablations of DESIGN.md's design-choice index.

func BenchmarkAblationCache(b *testing.B)          { runExperiment(b, "abl-cache") }
func BenchmarkAblationCacheGroupBits(b *testing.B) { runExperiment(b, "abl-groupbits") }
func BenchmarkAblationPartitioning(b *testing.B)   { runExperiment(b, "abl-partitioning") }
func BenchmarkAblationPartitions(b *testing.B)     { runExperiment(b, "abl-partitions") }
func BenchmarkAblationInitialSets(b *testing.B)    { runExperiment(b, "abl-initsets") }

// Extensions: Boolean Tucker, MDL rank selection, Walk'n'Merge MDL.

func BenchmarkExtTucker(b *testing.B)        { runExperiment(b, "ext-tucker") }
func BenchmarkExtRankSelect(b *testing.B)    { runExperiment(b, "ext-rankselect") }
func BenchmarkExtWalkNMergeMDL(b *testing.B) { runExperiment(b, "ext-wnm-mdl") }

// Public-API micro-benchmarks: one full DBTF factorization per iteration.

func benchmarkFactorize(b *testing.B, dim int, density float64, rank, threads int) {
	rng := rand.New(rand.NewSource(1))
	x := dbtf.RandomTensor(rng, dim, dim, dim, density)
	b.ReportMetric(float64(x.NNZ()), "nnz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
			Rank: rank, Machines: 4, MaxIter: 5, MinIter: 5, Seed: 1,
			ThreadsPerMachine: threads,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorizeDim32(b *testing.B)  { benchmarkFactorize(b, 32, 0.05, 8, 1) }
func BenchmarkFactorizeDim64(b *testing.B)  { benchmarkFactorize(b, 64, 0.05, 8, 1) }
func BenchmarkFactorizeDim128(b *testing.B) { benchmarkFactorize(b, 128, 0.02, 8, 1) }

// The threaded variant exercises the row-parallel kernels; it only beats
// the pinned row when GOMAXPROCS grants real cores.
func BenchmarkFactorizeDim128Threads4(b *testing.B) { benchmarkFactorize(b, 128, 0.02, 8, 4) }

func BenchmarkReconstructError(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, f := dbtf.TensorFromRandomFactors(rng, 96, 96, 96, 8, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.ReconstructError(x) != 0 {
			b.Fatal("unexpected error")
		}
	}
}
