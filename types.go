package dbtf

import (
	"io"
	"math/rand"

	"dbtf/internal/boolmat"
	"dbtf/internal/cluster"
	"dbtf/internal/gen"
	"dbtf/internal/metrics"
	"dbtf/internal/tensor"
	"dbtf/internal/trace"
)

// Tensor is a sparse three-way Boolean tensor. Construct with NewTensor,
// TensorFromCoords, RandomTensor, or the Read functions.
type Tensor = tensor.Tensor

// Coord is the coordinate of a nonzero tensor entry.
type Coord = tensor.Coord

// FactorMatrix is an n×R binary matrix with rows stored as uint64 masks.
type FactorMatrix = boolmat.FactorMatrix

// ClusterStats reports the simulated cluster's traffic, execution, and
// fault-tolerance counters.
type ClusterStats = cluster.Stats

// FaultPlan deterministically injects task failures, panics, and straggler
// delays into the simulated cluster; see Options.Faults.
type FaultPlan = cluster.FaultPlan

// Tracer serializes a run's structured trace events into a TraceSink; see
// Options.Tracer and package internal/trace for the event schema.
type Tracer = trace.Tracer

// TraceSink receives trace events; NewJSONLTrace and NewChromeTrace build
// the two shipped sinks.
type TraceSink = trace.Sink

// NewTracer returns a tracer writing to sink. A nil sink yields a nil
// (disabled) tracer, which every emission site treats as off.
func NewTracer(sink TraceSink) *Tracer { return trace.New(sink) }

// NewJSONLTrace returns a sink encoding one JSON event per line to w: the
// durable analysis format, validated by cmd/dbtf-tracecheck.
func NewJSONLTrace(w io.Writer) TraceSink { return trace.NewJSONL(w) }

// NewChromeTrace returns a sink encoding the Chrome trace_event format to
// w — load the file in chrome://tracing or Perfetto to see per-machine
// stage lanes on the simulated clock.
func NewChromeTrace(w io.Writer) TraceSink { return trace.NewChrome(w) }

// Dataset is a named stand-in for one of the paper's real-world datasets.
type Dataset = gen.Dataset

// NewTensor returns an empty I×J×K tensor.
func NewTensor(i, j, k int) *Tensor { return tensor.New(i, j, k) }

// TensorFromCoords builds a tensor from a coordinate list, validating,
// sorting and deduplicating it.
func TensorFromCoords(i, j, k int, coords []Coord) (*Tensor, error) {
	return tensor.FromCoords(i, j, k, coords)
}

// ReadTensor parses the text interchange format: a header line "I J K"
// followed by one "i j k" line per nonzero.
func ReadTensor(r io.Reader) (*Tensor, error) { return tensor.ReadFrom(r) }

// ReadTensorFile reads a tensor from a file in either the text
// interchange format or the compact binary format (sniffed by magic).
func ReadTensorFile(path string) (*Tensor, error) { return tensor.ReadAnyFile(path) }

// RandomTensor returns an i×j×k tensor with the given expected density.
func RandomTensor(rng *rand.Rand, i, j, k int, density float64) *Tensor {
	return gen.Random(rng, i, j, k, density)
}

// TensorFromRandomFactors draws random rank-r factors of the given density
// and returns the noise-free tensor they generate along with the factors —
// the planted-structure generator of the paper's error experiments.
func TensorFromRandomFactors(rng *rand.Rand, i, j, k, r int, factorDensity float64) (*Tensor, Factors) {
	x, a, b, c := gen.FromFactors(rng, i, j, k, r, factorDensity)
	return x, Factors{A: a, B: b, C: c}
}

// AddNoise returns a copy of x with additive·|X| ones added at random zero
// cells and destructive·|X| existing ones removed.
func AddNoise(rng *rand.Rand, x *Tensor, additive, destructive float64) *Tensor {
	return gen.AddNoise(rng, x, additive, destructive)
}

// StandinDatasets generates synthetic stand-ins for the six real-world
// datasets of the paper's Table III at the given scale factor.
func StandinDatasets(rng *rand.Rand, scale float64) []Dataset {
	return gen.Datasets(rng, scale)
}

// ReadFactorMatrix reads a factor matrix from a file written by
// FactorMatrix.WriteFile (or by `dbtf -output`).
func ReadFactorMatrix(path string) (*FactorMatrix, error) {
	return boolmat.ReadFactorFile(path)
}

// RelativeError returns |x ⊕ X̂| / |x| for a factor set.
func RelativeError(x *Tensor, f Factors) float64 {
	return metrics.RelativeError(x, f.A, f.B, f.C)
}

// PrecisionRecall returns cell-level precision and recall of the
// reconstruction against x.
func PrecisionRecall(x *Tensor, f Factors) (precision, recall float64) {
	return metrics.PrecisionRecall(x, f.A, f.B, f.C)
}

// FactorSimilarity returns the permutation-invariant mean Jaccard
// similarity between two factor sets of equal rank.
func FactorSimilarity(got, want Factors) float64 {
	return metrics.FactorSimilarity(got.A, got.B, got.C, want.A, want.B, want.C)
}
