package dbtf_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dbtf"
)

// The paper's Section III-C (row-summation caching) and Section III-D
// (vertical vs horizontal partitioning) describe pure optimizations: they
// change where and how Boolean row summations are computed, never their
// values. With identical seeds the ablation paths must therefore produce
// bit-for-bit identical factor matrices and errors. These differential
// tests pin that equivalence.

func diffTensor(t *testing.T, seed int64) *dbtf.Tensor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 20, 16, 18, 3, 0.3)
	return dbtf.AddNoise(rng, truth, 0.1, 0.1)
}

func assertIdentical(t *testing.T, seed int64, label string, a, b *dbtf.Result) {
	t.Helper()
	if a.Error != b.Error {
		t.Errorf("seed %d: %s error %d != baseline %d", seed, label, b.Error, a.Error)
	}
	if !a.A.Equal(b.A) || !a.B.Equal(b.B) || !a.C.Equal(b.C) {
		t.Errorf("seed %d: %s factors differ from baseline", seed, label)
	}
	if a.Iterations != b.Iterations {
		t.Errorf("seed %d: %s ran %d iterations, baseline %d", seed, label, b.Iterations, a.Iterations)
	}
}

func TestDiffCacheAblationIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 5, Seed: seed}
		cached, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.NoCache = true
		uncached, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seed, "NoCache", cached, uncached)
	}
}

func TestDiffPartitioningAblationIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 5, Seed: seed}
		vertical, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Horizontal = true
		horizontal, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seed, "Horizontal", vertical, horizontal)
	}
}

// TestDiffPartitionCountInvariant: the number of vertical partitions is a
// placement decision, not an algorithmic one — results must not depend on
// it.
func TestDiffPartitionCountInvariant(t *testing.T) {
	x := diffTensor(t, 1)
	var baseline *dbtf.Result
	for _, parts := range []int{1, 2, 5} {
		res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
			Rank: 4, Machines: 2, Partitions: parts, MaxIter: 5, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		assertIdentical(t, 1, "partition count", baseline, res)
	}
}

// TestDiffDeltaKernelRanksAndGroupBits sweeps factorization ranks across
// the whole uint64-mask range and both extreme cache splits (V=2: many
// small groups, heavy occlusion in the delta kernels; V=15: one group for
// most ranks). The word-parallel delta path must stay bit-identical to
// the naive uncached reference at every combination.
func TestDiffDeltaKernelRanksAndGroupBits(t *testing.T) {
	ranks := []int{1, 2, 5, 8, 16, 31, 33, 48, 64}
	for _, rank := range ranks {
		for _, gb := range []int{2, 15} {
			seed := int64(rank*100 + gb)
			rng := rand.New(rand.NewSource(seed))
			truth, _ := dbtf.TensorFromRandomFactors(rng, 13, 11, 12, 3, 0.3)
			x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
			opt := dbtf.Options{
				Rank: rank, Machines: 2, MaxIter: 2, MinIter: 2,
				CacheGroupBits: gb, Seed: seed,
			}
			cached, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.NoCache = true
			uncached, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, seed, fmt.Sprintf("rank=%d V=%d", rank, gb), cached, uncached)
		}
	}
}

// TestDiffThreadsPerMachineIdentical: intra-task row parallelism is a
// scheduling decision. Shards own disjoint row ranges and write disjoint
// delta subranges, so for any thread count the factors, every
// iteration's error, and the traffic/stage counters must be identical to
// the sequential run's — the simulated ledger models the same M-machine
// cluster regardless of how many threads each machine's kernels used.
func TestDiffThreadsPerMachineIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 5, InitialSets: 2, Seed: seed}
		base, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 4} {
			opt.ThreadsPerMachine = threads
			par, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("ThreadsPerMachine=%d", threads)
			assertIdentical(t, seed, label, base, par)
			if got, want := fmt.Sprint(par.IterationErrors), fmt.Sprint(base.IterationErrors); got != want {
				t.Errorf("seed %d: %s error trajectory %s, baseline %s", seed, label, got, want)
			}
			if got, want := fmt.Sprint(par.InitialErrors), fmt.Sprint(base.InitialErrors); got != want {
				t.Errorf("seed %d: %s initial errors %s, baseline %s", seed, label, got, want)
			}
			// Zero the time-valued counters: wall-clock measurements differ
			// between runs by nature; everything else must match exactly.
			bs, ps := base.Stats, par.Stats
			bs.ComputeNanos, bs.NetworkNanos, bs.DriverNanos, bs.TaskNanos = 0, 0, 0, 0
			ps.ComputeNanos, ps.NetworkNanos, ps.DriverNanos, ps.TaskNanos = 0, 0, 0, 0
			if bs != ps {
				t.Errorf("seed %d: %s stats %+v, baseline %+v", seed, label, ps, bs)
			}
		}
	}
	// The NoCache ablation exercises the per-shard scratch vectors.
	x := diffTensor(t, 1)
	opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 3, Seed: 1, NoCache: true}
	base, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.ThreadsPerMachine = 4
	par, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, 1, "NoCache ThreadsPerMachine=4", base, par)
}
