package dbtf_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dbtf"
)

// The paper's Section III-C (row-summation caching) and Section III-D
// (vertical vs horizontal partitioning) describe pure optimizations: they
// change where and how Boolean row summations are computed, never their
// values. With identical seeds the ablation paths must therefore produce
// bit-for-bit identical factor matrices and errors. These differential
// tests pin that equivalence.

func diffTensor(t *testing.T, seed int64) *dbtf.Tensor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 20, 16, 18, 3, 0.3)
	return dbtf.AddNoise(rng, truth, 0.1, 0.1)
}

func assertIdentical(t *testing.T, seed int64, label string, a, b *dbtf.Result) {
	t.Helper()
	if a.Error != b.Error {
		t.Errorf("seed %d: %s error %d != baseline %d", seed, label, b.Error, a.Error)
	}
	if !a.A.Equal(b.A) || !a.B.Equal(b.B) || !a.C.Equal(b.C) {
		t.Errorf("seed %d: %s factors differ from baseline", seed, label)
	}
	if a.Iterations != b.Iterations {
		t.Errorf("seed %d: %s ran %d iterations, baseline %d", seed, label, b.Iterations, a.Iterations)
	}
}

func TestDiffCacheAblationIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 5, Seed: seed}
		cached, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.NoCache = true
		uncached, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seed, "NoCache", cached, uncached)
	}
}

func TestDiffPartitioningAblationIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		x := diffTensor(t, seed)
		opt := dbtf.Options{Rank: 4, Machines: 2, MaxIter: 5, Seed: seed}
		vertical, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Horizontal = true
		horizontal, err := dbtf.Factorize(context.Background(), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, seed, "Horizontal", vertical, horizontal)
	}
}

// TestDiffPartitionCountInvariant: the number of vertical partitions is a
// placement decision, not an algorithmic one — results must not depend on
// it.
func TestDiffPartitionCountInvariant(t *testing.T) {
	x := diffTensor(t, 1)
	var baseline *dbtf.Result
	for _, parts := range []int{1, 2, 5} {
		res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
			Rank: 4, Machines: 2, Partitions: parts, MaxIter: 5, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		assertIdentical(t, 1, "partition count", baseline, res)
	}
}

// TestDiffDeltaKernelRanksAndGroupBits sweeps factorization ranks across
// the whole uint64-mask range and both extreme cache splits (V=2: many
// small groups, heavy occlusion in the delta kernels; V=15: one group for
// most ranks). The word-parallel delta path must stay bit-identical to
// the naive uncached reference at every combination.
func TestDiffDeltaKernelRanksAndGroupBits(t *testing.T) {
	ranks := []int{1, 2, 5, 8, 16, 31, 33, 48, 64}
	for _, rank := range ranks {
		for _, gb := range []int{2, 15} {
			seed := int64(rank*100 + gb)
			rng := rand.New(rand.NewSource(seed))
			truth, _ := dbtf.TensorFromRandomFactors(rng, 13, 11, 12, 3, 0.3)
			x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
			opt := dbtf.Options{
				Rank: rank, Machines: 2, MaxIter: 2, MinIter: 2,
				CacheGroupBits: gb, Seed: seed,
			}
			cached, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.NoCache = true
			uncached, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, seed, fmt.Sprintf("rank=%d V=%d", rank, gb), cached, uncached)
		}
	}
}
