package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module so the exit-code contract can
// be exercised against controlled findings instead of the (clean) repo.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn executes run() with the working directory moved to dir, since
// module discovery starts from the process cwd like the go tool's.
func runIn(t *testing.T, dir string, patterns []string, jsonOut bool) (code int, stdout, stderr string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb bytes.Buffer
	code = run(patterns, false, jsonOut, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p.go": "package p\n\nfunc ok() {}\n",
	})
	code, stdout, stderr := runIn(t, dir, []string{"./..."}, false)
	if code != 0 {
		t.Fatalf("clean module: exit %d (stdout %q, stderr %q)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean module printed findings: %q", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p.go": "package p\n\nfunc leak() {\n\tgo func() {}()\n}\n",
	})
	code, stdout, _ := runIn(t, dir, []string{"./..."}, false)
	if code != 1 {
		t.Fatalf("module with leak: exit %d, want 1 (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "[goleak]") || !strings.Contains(stdout, "p.go:4") {
		t.Fatalf("finding output missing analyzer or position: %q", stdout)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	// No go.mod anywhere above the temp dir: module discovery fails.
	dir := t.TempDir()
	code, _, stderr := runIn(t, dir, []string{"./..."}, false)
	if code != 2 {
		t.Fatalf("module-less dir: exit %d, want 2 (stderr %q)", code, stderr)
	}

	// A pattern naming a missing directory is a load error, not a finding.
	mod := writeModule(t, map[string]string{"p.go": "package p\n"})
	code, _, stderr = runIn(t, mod, []string{"./nosuchpkg"}, false)
	if code != 2 {
		t.Fatalf("missing package pattern: exit %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"p.go": "package p\n\nfunc leak() {\n\tgo func() {}()\n}\n",
	})
	code, stdout, _ := runIn(t, dir, []string{"./..."}, true)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 JSON finding, got %d: %q", len(lines), stdout)
	}
	var f jsonFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("finding is not valid JSON: %v (%q)", err, lines[0])
	}
	if f.File != "p.go" || f.Line != 4 || f.Analyzer != "goleak" {
		t.Errorf("finding fields = %+v, want p.go:4 goleak", f)
	}
	if f.Directive != "//dbtf:detached" {
		t.Errorf("finding directive = %q, want //dbtf:detached", f.Directive)
	}
	if f.Message == "" {
		t.Error("finding message is empty")
	}
}

func TestListDescribesScopesAndPhases(t *testing.T) {
	var out bytes.Buffer
	printList(&out)
	s := out.String()
	for _, want := range []string{
		"wirebound",
		"internal/transport",
		"escape: //dbtf:bounded <reason>",
		"phase: per-package + cross-package facts",
		"goleak",
		"escape: //dbtf:detached <reason>",
		"all packages",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q:\n%s", want, s)
		}
	}
}
