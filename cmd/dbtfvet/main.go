// Command dbtfvet runs the repository's domain-specific static-analysis
// suite (internal/analysis): determinism, lock discipline, kernel
// contracts, durable-write error hygiene, goroutine-join proofs,
// lock-order cycles, context cancellation flow, and wire-decode bounds.
// It is the multichecker CI runs as a required job next to go vet:
//
//	go vet ./... && go run ./cmd/dbtfvet ./...
//
// or, with -govet, dbtfvet chains the stock passes itself:
//
//	go run ./cmd/dbtfvet -govet ./...
//
// The suite runs in two phases: every analyzer's per-package pass, then
// a cross-package pass over the facts the first phase exported (lock
// graphs, WaitGroup joins, decode entry points) — so findings can span
// package boundaries. -json emits one JSON object per finding for CI
// annotation.
//
// Patterns follow the go tool's shape ("./...", "./internal/cluster",
// "internal/core/..."); the default is "./...". Each analyzer carries its
// own package scope (see -list), so running the full tree is always safe.
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dbtf/internal/analysis"
)

func main() {
	govet := flag.Bool("govet", false, "also run the stock go vet passes on the same patterns")
	list := flag.Bool("list", false, "list the suite's analyzers with scopes, phases, and escape directives, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dbtfvet [-govet] [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		printList(os.Stdout)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *govet, *jsonOut, os.Stdout, os.Stderr))
}

// printList describes each analyzer: scope (so the package-restricted
// ones like wirebound are discoverable), whether it has a cross-package
// phase, and its escape-hatch directive.
func printList(w io.Writer) {
	for _, a := range analysis.Analyzers() {
		scope := "all packages"
		if len(a.Scope) > 0 {
			scope = strings.Join(a.Scope, ", ")
		}
		fmt.Fprintf(w, "%-16s %s\n%16s scope: %s\n", a.Name, a.Doc, "", scope)
		if a.CrossPackage != nil {
			fmt.Fprintf(w, "%16s phase: per-package + cross-package facts\n", "")
		}
		if a.Escape != "" {
			fmt.Fprintf(w, "%16s escape: %s%s <reason>\n", "", analysis.DirectivePrefix, a.Escape)
		}
	}
}

// jsonFinding is the machine-readable shape of one diagnostic; directive
// names the //dbtf: escape hatch that would suppress it, when the
// analyzer has one.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

func run(patterns []string, govet, jsonOut bool, stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "dbtfvet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "dbtfvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns, false)
	if err != nil {
		fmt.Fprintln(stderr, "dbtfvet:", err)
		return 2
	}
	analyzers := analysis.Analyzers()
	escapes := map[string]string{}
	for _, a := range analyzers {
		if a.Escape != "" {
			escapes[a.Name] = analysis.DirectivePrefix + a.Escape
		}
	}
	diags, err := analysis.RunSuite(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "dbtfvet:", err)
		return 2
	}
	findings := 0
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		// Report module-relative paths so output is stable across
		// checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		if jsonOut {
			enc.Encode(jsonFinding{
				File:      d.Pos.Filename,
				Line:      d.Pos.Line,
				Column:    d.Pos.Column,
				Analyzer:  d.Analyzer,
				Message:   d.Message,
				Directive: escapes[d.Analyzer],
			})
		} else {
			fmt.Fprintln(stdout, d)
		}
		findings++
	}
	if govet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = cwd
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintln(stderr, "dbtfvet: go vet:", err)
				return 2
			}
			findings++
		}
	}
	if findings > 0 {
		return 1
	}
	return 0
}
