// Command dbtfvet runs the repository's domain-specific static-analysis
// suite (internal/analysis): determinism, lock discipline, kernel
// contracts, and durable-write error hygiene. It is the multichecker CI
// runs as a required job next to go vet:
//
//	go vet ./... && go run ./cmd/dbtfvet ./...
//
// or, with -govet, dbtfvet chains the stock passes itself:
//
//	go run ./cmd/dbtfvet -govet ./...
//
// Patterns follow the go tool's shape ("./...", "./internal/cluster",
// "internal/core/..."); the default is "./...". Each analyzer carries its
// own package scope (see -list), so running the full tree is always safe.
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dbtf/internal/analysis"
)

func main() {
	govet := flag.Bool("govet", false, "also run the stock go vet passes on the same patterns")
	list := flag.Bool("list", false, "list the suite's analyzers and their package scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dbtfvet [-govet] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-16s %s\n%16s scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *govet))
}

func run(patterns []string, govet bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtfvet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtfvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtfvet:", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.Analyzers() {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dbtfvet:", err)
				return 2
			}
			for _, d := range diags {
				// Report module-relative paths so output is stable across
				// checkouts.
				if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
					d.Pos.Filename = filepath.ToSlash(rel)
				}
				fmt.Println(d)
				findings++
			}
		}
	}
	if govet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = cwd
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintln(os.Stderr, "dbtfvet: go vet:", err)
				return 2
			}
			findings++
		}
	}
	if findings > 0 {
		return 1
	}
	return 0
}
