// Command dbtf-serve runs the factorization-as-a-service job server: a
// long-lived HTTP process that accepts tensor uploads and factorization
// jobs, schedules them fairly across tenants on a bounded worker pool,
// sheds over-budget load with 429/503 + Retry-After, timeslices and
// evicts running jobs at checkpointed iteration boundaries, and
// survives crashes and restarts with zero lost jobs.
//
// Usage:
//
//	dbtf-serve -data /var/lib/dbtf [-addr 127.0.0.1:8080] [flags]
//
// The resolved address is printed to stdout as
//
//	dbtf-serve listening on <addr>
//
// so scripts can start it on an ephemeral port (-addr 127.0.0.1:0).
// SIGTERM and SIGINT drain gracefully: admission closes, running jobs
// checkpoint and requeue at their next iteration boundary, and a
// subsequent start over the same -data directory resumes every queued
// job bit-identically.
//
// With -loadtest the process instead runs the seeded chaos load test
// against itself — open-loop multi-tenant traffic, forced evictions, a
// mid-test drain + restart — then verifies zero lost jobs and factor
// bit-identity, prints the latency/throughput/fairness report, and
// exits non-zero on any violation. CI runs this as the service smoke
// test.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dbtf/internal/serve"
	"dbtf/internal/serve/loadgen"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
		data       = flag.String("data", "", "durable data directory (required; created if missing)")
		maxRunning = flag.Int("max-running", 2, "concurrently running jobs")
		machines   = flag.Int("machines", 4, "simulated cluster machines per job")
		threads    = flag.Int("threads", 1, "threads per simulated machine")
		gateSlots  = flag.Int("gate", 0, "host-CPU gate slots shared by all jobs (0 = GOMAXPROCS)")
		slice      = flag.Int("slice", 8, "timeslice in iterations before a busy job yields to waiters (<0 disables)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
		maxQueued  = flag.Int("max-queued", 1024, "admission limit on queued+running jobs")
		tenantMax  = flag.Int("tenant-queued", 256, "admission limit on one tenant's queued jobs")
		memBudget  = flag.Int64("mem-budget", 1<<30, "admission memory budget in bytes")
		rate       = flag.Float64("rate", 50, "per-tenant admission rate, jobs/second")
		burst      = flag.Float64("burst", 100, "per-tenant admission burst")

		loadtest = flag.Bool("loadtest", false, "run the seeded chaos load test against this binary and exit")
		seed     = flag.Int64("seed", 1, "load test: workload seed")
		small    = flag.Int("small", 200, "load test: number of small jobs")
		giant    = flag.Int("giant", 3, "load test: number of giant jobs")
		tenants  = flag.Int("tenants", 4, "load test: number of well-behaved tenants")
	)
	flag.Parse()

	cfg := serve.Config{
		DataDir:           *data,
		MaxRunning:        *maxRunning,
		Machines:          *machines,
		ThreadsPerMachine: *threads,
		GateSlots:         *gateSlots,
		SliceIterations:   *slice,
		DrainTimeout:      *drain,
		Admission: serve.AdmissionConfig{
			MaxQueued:          *maxQueued,
			MaxQueuedPerTenant: *tenantMax,
			MemoryBudget:       *memBudget,
			TenantRate:         *rate,
			TenantBurst:        *burst,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	var err error
	if *loadtest {
		err = runLoadTest(cfg, loadgen.Scenario{
			Seed:          *seed,
			Tenants:       *tenants,
			SmallJobs:     *small,
			GiantJobs:     *giant,
			OverQuota:     true,
			EvictInterval: 25 * time.Millisecond,
			Machines:      *machines,
		})
	} else {
		err = run(cfg, *addr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtf-serve:", err)
		os.Exit(1)
	}
}

// run is the normal server mode: serve until SIGTERM/SIGINT, then drain.
func run(cfg serve.Config, addr string) error {
	if cfg.DataDir == "" {
		return errors.New("-data is required")
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dbtf-serve listening on %s\n", lis.Addr())

	hs := &http.Server{Handler: s.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(lis) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigc:
		signal.Stop(sigc)
		fmt.Printf("dbtf-serve received %v, draining\n", sig)
	}
	// Order matters: drain the job engine first (running jobs checkpoint
	// and requeue durably), then stop answering HTTP.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("dbtf-serve drained, zero lost jobs")
	return nil
}

// runLoadTest is the -loadtest mode: a full chaos scenario against a
// server in this process, including a mid-flight drain + restart.
func runLoadTest(cfg serve.Config, sc loadgen.Scenario) error {
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "dbtf-serve-loadtest-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
	}
	// Load-test posture: small timeslice so giants share, tight-ish
	// budgets so shedding actually happens against the hog tenant.
	if cfg.SliceIterations == 8 {
		cfg.SliceIterations = 3
	}
	// Burst covers a well-behaved tenant's whole paced share; the hog
	// submits ~1.5x the total workload unpaced, so it blows through its
	// burst and sheds on the rate limit.
	cfg.Admission.TenantRate = 50
	perTenant := sc.SmallJobs
	if sc.Tenants > 1 {
		perTenant = sc.SmallJobs/sc.Tenants + sc.GiantJobs
	}
	cfg.Admission.TenantBurst = float64(perTenant + 10)
	cfg.DrainTimeout = 20 * time.Second

	start := func() (*serve.Server, *http.Server, string, error) {
		s, err := serve.New(cfg)
		if err != nil {
			return nil, nil, "", err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Drain()
			return nil, nil, "", err
		}
		hs := &http.Server{Handler: s.Handler()}
		//dbtf:detached joined semantically by hs.Shutdown in stop(), which unblocks Serve
		go func() {
			//dbtf:allow-unchecked Serve always returns ErrServerClosed after Shutdown
			hs.Serve(lis)
		}()
		return s, hs, "http://" + lis.Addr().String(), nil
	}
	stop := func(s *serve.Server, hs *http.Server) error {
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	runner := loadgen.New(sc, logf)

	s1, hs1, base1, err := start()
	if err != nil {
		return err
	}
	fmt.Printf("loadtest phase 1: %s (%d small, %d giant, %d tenants, chaos every %v)\n",
		base1, sc.SmallJobs, sc.GiantJobs, sc.Tenants, sc.EvictInterval)
	if err := runner.UploadTensors(base1); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := runner.SubmitAll(ctx, base1); err != nil {
		return err
	}

	// Kill the server mid-flight: drain (checkpointing the running jobs)
	// and restart over the same data directory.
	fmt.Println("loadtest: draining server mid-flight")
	if err := stop(s1, hs1); err != nil {
		return fmt.Errorf("drain/shutdown: %w", err)
	}
	s2, hs2, base2, err := start()
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	fmt.Printf("loadtest phase 2: restarted at %s, awaiting completion\n", base2)
	if err := runner.AwaitCompletion(ctx, base2); err != nil {
		return err
	}
	verified, mismatches, err := runner.Verify(base2)
	if err != nil {
		return err
	}
	rep := runner.Report(verified, mismatches)
	fmt.Println()
	fmt.Println(rep.Markdown())
	if err := stop(s2, hs2); err != nil {
		return fmt.Errorf("final shutdown: %w", err)
	}

	fmt.Printf("lost jobs: %d\n", rep.Lost)
	switch {
	case rep.Lost > 0:
		return fmt.Errorf("%d jobs lost", rep.Lost)
	case rep.Failed > 0:
		return fmt.Errorf("%d jobs failed", rep.Failed)
	case rep.VerifyMismatches > 0:
		return fmt.Errorf("%d bit-identity mismatches", rep.VerifyMismatches)
	case verified == 0:
		return errors.New("no jobs verified for bit-identity")
	}
	fmt.Println("loadtest PASS: zero lost jobs, clean drain, bit-identical resumes")
	return nil
}
