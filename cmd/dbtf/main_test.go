package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dbtf"
	"dbtf/internal/trace"
)

func writeTensor(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	x, _ := dbtf.TensorFromRandomFactors(rng, 12, 12, 12, 2, 0.25)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := x.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresInput(t *testing.T) {
	if err := run([]string{"-rank", "2"}); err == nil {
		t.Fatal("missing -input accepted")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-method", "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-input", "/nonexistent/x.tns"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunDBTFWithOutput(t *testing.T) {
	path := writeTensor(t)
	prefix := filepath.Join(t.TempDir(), "factors")
	if err := run([]string{"-input", path, "-rank", "2", "-machines", "2", "-output", prefix}); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".A", ".B", ".C"} {
		m, err := dbtf.ReadFactorMatrix(prefix + suffix)
		if err != nil {
			t.Fatalf("factor file %s: %v", suffix, err)
		}
		if m.Rows() != 12 || m.Rank() != 2 {
			t.Fatalf("factor file %s has shape %dx%d", suffix, m.Rows(), m.Rank())
		}
	}
}

func TestRunTucker(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-method", "tucker", "-machines", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBCPALS(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-method", "bcpals"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWalkNMerge(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-method", "walknmerge"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "4", "-budget", "1ns"}); err == nil {
		t.Fatal("expired budget not surfaced")
	}
}

func TestRunChaos(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-machines", "2", "-chaos", "0.2", "-max-retries", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosRateValidated(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-chaos", "0.9"}); err == nil {
		t.Fatal("chaos rate 0.9 accepted")
	}
}

func TestRunFlagCombosValidatedUpFront(t *testing.T) {
	path := writeTensor(t)
	cases := map[string][]string{
		"resume without checkpoint-dir": {"-resume"},
		"checkpoint-every zero":         {"-checkpoint-dir", t.TempDir(), "-checkpoint-every", "0"},
		"checkpoint-every negative":     {"-checkpoint-dir", t.TempDir(), "-checkpoint-every", "-2"},
		"machine-loss rate 1":           {"-chaos-machine-loss", "1"},
		"machine-loss rate negative":    {"-chaos-machine-loss", "-0.1"},
		"rejoin negative":               {"-chaos-rejoin", "-1"},
		"chaos negative":                {"-chaos", "-0.2"},
		"max-retries negative":          {"-max-retries", "-1"},
	}
	for name, extra := range cases {
		args := append([]string{"-input", path, "-rank", "2", "-machines", "2"}, extra...)
		if err := run(args); err == nil {
			t.Errorf("%s: invalid flags accepted: %v", name, extra)
		}
	}
}

func TestRunMachineLossChaos(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-machines", "4",
		"-chaos-machine-loss", "0.15", "-chaos-rejoin", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	path := writeTensor(t)
	dir := t.TempDir()
	base := []string{"-input", path, "-rank", "2", "-machines", "2", "-checkpoint-dir", dir, "-checkpoint-every", "2"}
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-resume")); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceWritesValidJSONL(t *testing.T) {
	path := writeTensor(t)
	out := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run([]string{"-input", path, "-rank", "2", "-machines", "2",
		"-chaos", "0.1", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := trace.ValidateJSONL(f)
	if err != nil {
		t.Fatalf("trace written by -trace is invalid: %v", err)
	}
	if sum.Runs != 1 || sum.Stages == 0 {
		t.Fatalf("trace summary %+v, want 1 run with stages", sum)
	}
}

func TestRunTraceChromeIsJSON(t *testing.T) {
	path := writeTensor(t)
	out := filepath.Join(t.TempDir(), "run.json")
	if err := run([]string{"-input", path, "-rank", "2", "-machines", "2",
		"-trace", out, "-trace-format", "chrome"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace empty")
	}
}

func TestRunTraceFlagValidation(t *testing.T) {
	path := writeTensor(t)
	cases := map[string][]string{
		"bad format":           {"-trace", "x.jsonl", "-trace-format", "xml"},
		"non-dbtf method":      {"-method", "bcpals", "-trace", "x.jsonl"},
		"auto-rank with trace": {"-auto-rank", "4", "-trace", "x.jsonl"},
	}
	for name, extra := range cases {
		args := append([]string{"-input", path, "-rank", "2"}, extra...)
		if err := run(args); err == nil {
			t.Errorf("%s: invalid trace flags accepted: %v", name, extra)
		}
	}
}

func TestRunInitFlag(t *testing.T) {
	path := writeTensor(t)
	ok := map[string][]string{
		"dbtf topfiber":   {"-rank", "2", "-machines", "2", "-init", "topfiber"},
		"dbtf random":     {"-rank", "2", "-machines", "2", "-init", "random"},
		"bcpals asso":     {"-rank", "2", "-method", "bcpals", "-init", "asso"},
		"bcpals topfiber": {"-rank", "2", "-method", "bcpals", "-init", "topfiber"},
	}
	for name, extra := range ok {
		if err := run(append([]string{"-input", path}, extra...)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := map[string][]string{
		"dbtf unknown scheme":          {"-rank", "2", "-init", "bogus"},
		"bcpals takes no fiber":        {"-rank", "2", "-method", "bcpals", "-init", "fiber"},
		"walknmerge takes no init":     {"-rank", "2", "-method", "walknmerge", "-init", "topfiber"},
		"topfiber rejects initialsets": {"-rank", "2", "-init", "topfiber", "-sets", "2"},
	}
	for name, extra := range bad {
		if err := run(append([]string{"-input", path}, extra...)); err == nil {
			t.Errorf("%s: invalid -init accepted: %v", name, extra)
		}
	}
}

func TestRunVerbose(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-rank", "2", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoRank(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-auto-rank", "4", "-machines", "2", "-sets", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWalkNMergeMDL(t *testing.T) {
	path := writeTensor(t)
	if err := run([]string{"-input", path, "-method", "walknmerge", "-mdl"}); err != nil {
		t.Fatal(err)
	}
}
