// Command dbtf factorizes a Boolean tensor file with DBTF or one of the
// paper's baseline methods.
//
// Usage:
//
//	dbtf -input triples.tns -rank 10 [-method dbtf|bcpals|walknmerge] [flags]
//
// The input format is one "i j k" line per nonzero after a header line
// "I J K" with the mode dimensions. On success the reconstruction error is
// printed and, with -output, the three factor matrices are written as
// 0/1 text files <prefix>.A, <prefix>.B, <prefix>.C.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"dbtf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbtf:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbtf", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "input tensor file (required)")
		method     = fs.String("method", "dbtf", "factorization method: dbtf, tucker, bcpals, or walknmerge")
		rank       = fs.Int("rank", 10, "decomposition rank R")
		maxIter    = fs.Int("maxiter", 10, "maximum iterations T")
		machines   = fs.Int("machines", 16, "simulated cluster size M (dbtf)")
		threads    = fs.Int("threads", 1, "OS threads per simulated machine for intra-task row parallelism (dbtf, -transport sim; results are identical for any value)")
		partitions = fs.Int("partitions", 0, "vertical partitions N (dbtf; 0 = machines)")
		sets       = fs.Int("sets", 1, "initial factor sets L (dbtf)")
		initMode   = fs.String("init", "", "initialization scheme: fiber, random, or topfiber (dbtf; default fiber) / topfiber or asso (bcpals; default topfiber)")
		groupBits  = fs.Int("groupbits", 15, "cache group bits V (dbtf)")
		seed       = fs.Int64("seed", 1, "random seed")
		chaos      = fs.Float64("chaos", 0, "inject task failures at this rate into the simulated cluster (dbtf; panics at 1/4 and stragglers at 1/2 of the rate are injected too)")
		chaosSeed  = fs.Int64("chaos-seed", 0, "seed of the fault-injection schedule (0 = -seed)")
		chaosLoss  = fs.Float64("chaos-machine-loss", 0, "per-stage probability of losing each machine, in [0,1) (dbtf; survivors take over)")
		chaosJoin  = fs.Int("chaos-rejoin", 0, "stages after which a lost machine rejoins (dbtf; 0 = never)")
		maxRetries = fs.Int("max-retries", 0, "per-task retry bound for transient failures (0 = default 3)")
		failFast   = fs.Bool("failfast", false, "abort on the first task failure instead of retrying")
		ckDir      = fs.String("checkpoint-dir", "", "directory for durable iteration checkpoints (dbtf)")
		ckEvery    = fs.Int("checkpoint-every", 1, "checkpoint period in iterations (dbtf; requires -checkpoint-dir)")
		resume     = fs.Bool("resume", false, "continue from the checkpoint in -checkpoint-dir (dbtf)")
		autoRank   = fs.Int("auto-rank", 0, "select the rank by MDL up to this maximum (overrides -rank; dbtf method only)")
		mdlSelect  = fs.Bool("mdl", false, "use MDL model-order selection (walknmerge method only)")
		budget     = fs.Duration("budget", 0, "abort after this duration (0 = unlimited)")
		output     = fs.String("output", "", "prefix for writing factor matrices")
		transport  = fs.String("transport", "sim", "cluster backend: sim (in-process simulated machines) or tcp (real dbtf-worker processes; requires -workers)")
		workers    = fs.String("workers", "", "comma-separated dbtf-worker addresses for -transport tcp; machine count is the address count")
		verbose    = fs.Bool("v", false, "print per-iteration progress")
		traceOut   = fs.String("trace", "", "write a structured run trace to this file (dbtf method only)")
		traceFmt   = fs.String("trace-format", "jsonl", "trace format: jsonl (analysis/tracecheck) or chrome (load in Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}
	// Validate flag combinations before any work starts, so a bad
	// invocation fails immediately with a clear message rather than
	// mid-run.
	if *maxRetries < 0 {
		return fmt.Errorf("-max-retries %d must be >= 0", *maxRetries)
	}
	if *chaos < 0 || *chaos > 0.5 {
		return fmt.Errorf("-chaos %v outside [0, 0.5]", *chaos)
	}
	if *chaosLoss < 0 || *chaosLoss >= 1 {
		return fmt.Errorf("-chaos-machine-loss %v outside [0,1)", *chaosLoss)
	}
	if *chaosJoin < 0 {
		return fmt.Errorf("-chaos-rejoin %d must be >= 0", *chaosJoin)
	}
	if *resume && *ckDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckDir != "" && *ckEvery <= 0 {
		return fmt.Errorf("-checkpoint-every %d must be >= 1", *ckEvery)
	}
	// Parse -init per method so a typo fails before the tensor is read.
	var dbtfInit dbtf.InitScheme
	var bcpalsInit dbtf.BCPALSInit
	switch *method {
	case "bcpals":
		v, err := dbtf.ParseBCPALSInit(*initMode)
		if err != nil {
			return fmt.Errorf("-init: %v", err)
		}
		bcpalsInit = v
	case "dbtf":
		v, err := dbtf.ParseInitScheme(*initMode)
		if err != nil {
			return fmt.Errorf("-init: %v", err)
		}
		dbtfInit = v
	default:
		if *initMode != "" {
			return fmt.Errorf("-init requires -method dbtf or bcpals")
		}
	}
	if *traceFmt != "jsonl" && *traceFmt != "chrome" {
		return fmt.Errorf("-trace-format %q (want jsonl or chrome)", *traceFmt)
	}
	if *traceOut != "" && (*method != "dbtf" || *autoRank > 0) {
		return fmt.Errorf("-trace requires -method dbtf (without -auto-rank)")
	}
	var workerAddrs []string
	switch *transport {
	case "sim":
		if *workers != "" {
			return fmt.Errorf("-workers requires -transport tcp")
		}
	case "tcp":
		if *workers == "" {
			return fmt.Errorf("-transport tcp requires -workers")
		}
		if *method != "dbtf" || *autoRank > 0 {
			return fmt.Errorf("-transport tcp requires -method dbtf (without -auto-rank)")
		}
		if *chaos > 0 || *chaosLoss > 0 {
			return fmt.Errorf("-chaos flags inject faults into the simulated backend; with -transport tcp, kill a worker process instead")
		}
		for _, a := range strings.Split(*workers, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return fmt.Errorf("-workers %q contains an empty address", *workers)
			}
			workerAddrs = append(workerAddrs, a)
		}
	default:
		return fmt.Errorf("-transport %q (want sim or tcp)", *transport)
	}
	if len(workerAddrs) > 0 {
		// The worker processes are the machines; the summary lines below
		// report the real cluster size.
		*machines = len(workerAddrs)
	}

	x, err := dbtf.ReadTensorFile(*input)
	if err != nil {
		return err
	}
	i, j, k := x.Dims()
	fmt.Printf("tensor: %dx%dx%d, %d nonzeros (density %.4g)\n", i, j, k, x.NNZ(), x.Density())

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	var trace func(string, ...any)
	if *verbose {
		trace = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}

	start := time.Now()
	var factors dbtf.Factors
	var recErr int64
	switch *method {
	case "dbtf":
		if *autoRank > 0 {
			sel, err := dbtf.SelectRank(ctx, x, dbtf.Options{
				MaxIter:        *maxIter,
				InitialSets:    *sets,
				Machines:       *machines,
				Partitions:     *partitions,
				CacheGroupBits: *groupBits,
				Init:           dbtfInit,
				Seed:           *seed,
			}, *autoRank)
			if err != nil {
				return err
			}
			factors, recErr = sel.Result.Factors, sel.Result.Error
			fmt.Printf("dbtf: MDL selected rank %d of max %d (%.0f bits vs %.0f baseline)\n",
				sel.Rank, *autoRank, sel.Bits[sel.Rank-1], sel.BaselineBits)
			break
		}
		var faults *dbtf.FaultPlan
		if *chaos > 0 || *chaosLoss > 0 {
			fseed := *chaosSeed
			if fseed == 0 {
				fseed = *seed
			}
			faults = &dbtf.FaultPlan{
				Seed:               fseed,
				FailureRate:        *chaos,
				PanicRate:          *chaos / 4,
				StragglerRate:      *chaos / 2,
				MachineLossRate:    *chaosLoss,
				MachineRejoinAfter: *chaosJoin,
			}
		}
		var tracer *dbtf.Tracer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			sink := dbtf.NewJSONLTrace(f)
			if *traceFmt == "chrome" {
				sink = dbtf.NewChromeTrace(f)
			}
			tracer = dbtf.NewTracer(sink)
		}
		opts := dbtf.Options{
			Rank:              *rank,
			MaxIter:           *maxIter,
			InitialSets:       *sets,
			Machines:          *machines,
			ThreadsPerMachine: *threads,
			Workers:           workerAddrs,
			Partitions:        *partitions,
			CacheGroupBits:    *groupBits,
			Init:              dbtfInit,
			Seed:              *seed,
			MaxRetries:        *maxRetries,
			FailFast:          *failFast,
			Faults:            faults,
			Trace:             trace,
			Tracer:            tracer,
		}
		if *ckDir != "" {
			opts.CheckpointDir = *ckDir
			opts.CheckpointEvery = *ckEvery
			opts.Resume = *resume
		}
		res, err := dbtf.Factorize(ctx, x, opts)
		// Close the trace even when the run failed: the deferred run-end
		// event has been emitted and a partial trace is still loadable.
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("writing trace %s: %w", *traceOut, cerr)
		}
		if err != nil {
			return err
		}
		if *traceOut != "" {
			fmt.Printf("trace: wrote %s (%s)\n", *traceOut, *traceFmt)
		}
		factors, recErr = res.Factors, res.Error
		fmt.Printf("dbtf: %d iterations, converged=%v\n", res.Iterations, res.Converged)
		fmt.Printf("cluster: simulated %v on %d machines; shuffled %d B, broadcast %d B, collected %d B\n",
			res.SimTime.Round(time.Millisecond), *machines,
			res.Stats.ShuffledBytes, res.Stats.BroadcastBytes, res.Stats.CollectedBytes)
		if faults != nil {
			fmt.Printf("chaos: %d injected faults, %d retries, %d speculative launches (%d wins), %d machine losses, %d recoveries\n",
				res.Stats.InjectedFaults, res.Stats.Retries, res.Stats.SpeculativeLaunches,
				res.Stats.SpeculativeWins, res.Stats.MachineLosses, res.Stats.Recoveries)
		}
		if *ckDir != "" {
			fmt.Printf("checkpoint: %d B written to %s\n", res.Stats.CheckpointBytes, *ckDir)
		}
	case "bcpals":
		res, err := dbtf.FactorizeBCPALS(ctx, x, dbtf.BCPALSOptions{Rank: *rank, MaxIter: *maxIter, Init: bcpalsInit})
		if err != nil {
			return err
		}
		factors = dbtf.Factors{A: res.A, B: res.B, C: res.C}
		recErr = res.Error
		fmt.Printf("bcpals: %d iterations, converged=%v\n", res.Iterations, res.Converged)
	case "walknmerge":
		res, err := dbtf.FactorizeWalkNMerge(ctx, x, dbtf.WalkNMergeOptions{Rank: *rank, Seed: *seed, MDLSelect: *mdlSelect})
		if err != nil {
			return err
		}
		factors = dbtf.Factors{A: res.A, B: res.B, C: res.C}
		recErr = res.Error
		fmt.Printf("walknmerge: %d blocks found\n", len(res.Blocks))
	case "tucker":
		res, err := dbtf.FactorizeTucker(ctx, x, dbtf.TuckerOptions{
			CPRank:      *rank,
			Machines:    *machines,
			InitialSets: *sets,
			Seed:        *seed,
			MaxIter:     *maxIter,
		})
		if err != nil {
			return err
		}
		factors = dbtf.Factors{A: res.A, B: res.B, C: res.C}
		recErr = res.Error
		p, q, sDim := res.Core.Dims()
		fmt.Printf("tucker: core %dx%dx%d with %d ones (from CP rank %d, CP error %d)\n",
			p, q, sDim, res.Core.NNZ(), *rank, res.CPError)
	default:
		return fmt.Errorf("unknown method %q (want dbtf, tucker, bcpals, or walknmerge)", *method)
	}

	rel := float64(0)
	if x.NNZ() > 0 {
		rel = float64(recErr) / float64(x.NNZ())
	} else if recErr > 0 {
		rel = math.Inf(1) // no normalizer; matches metrics.RelativeError
	}
	fmt.Printf("reconstruction error: %d (relative %.4f) in %v\n", recErr, rel, time.Since(start).Round(time.Millisecond))

	if *output != "" {
		for suffix, m := range map[string]*dbtf.FactorMatrix{"A": factors.A, "B": factors.B, "C": factors.C} {
			path := *output + "." + suffix
			if err := m.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%dx%d)\n", path, m.Rows(), m.Rank())
		}
	}
	return nil
}
