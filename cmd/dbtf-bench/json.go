// Benchmark-regression harness: `dbtf-bench -json` runs the Factorize
// micro-benchmarks (the same configurations as BenchmarkFactorizeDim* in
// bench_test.go) under testing.Benchmark and appends a BENCH_<n>.json
// snapshot — ns/op, B/op, allocs/op, and the simulated cluster makespan —
// to the output directory. Successive snapshots form the performance
// trajectory of the repository; EXPERIMENTS.md quotes the before/after
// pairs of each optimization PR.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"dbtf"
)

// factorizeBench mirrors benchmarkFactorize in bench_test.go: one full DBTF
// factorization per iteration. Keep the two in sync so JSON snapshots and
// `go test -bench=Factorize` measure the same workload.
type factorizeBench struct {
	Name    string
	Dim     int
	Density float64
	Rank    int
}

var factorizeBenches = []factorizeBench{
	{"FactorizeDim32", 32, 0.05, 8},
	{"FactorizeDim64", 64, 0.05, 8},
	{"FactorizeDim128", 128, 0.02, 8},
}

func (fb factorizeBench) options(threads int, init dbtf.InitScheme) dbtf.Options {
	return dbtf.Options{Rank: fb.Rank, Machines: 4, MaxIter: 5, MinIter: 5, Seed: 1,
		ThreadsPerMachine: threads, Init: init}
}

func (fb factorizeBench) tensor() *dbtf.Tensor {
	rng := rand.New(rand.NewSource(1))
	return dbtf.RandomTensor(rng, fb.Dim, fb.Dim, fb.Dim, fb.Density)
}

// BenchRecord is one benchmark's measurement in a BENCH_<n>.json snapshot.
type BenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimMakespanNs is the simulated M-machine makespan of one
	// factorization (Result.SimTime), the paper's Figure 7 metric.
	SimMakespanNs int64 `json:"sim_makespan_ns"`
	// NNZ and Error identify the workload and pin the result, so a
	// "speedup" that silently changes the factorization is caught when
	// snapshots are diffed.
	NNZ   int   `json:"nnz"`
	Error int64 `json:"error"`
	// ThreadsPerMachine is the run's Options.ThreadsPerMachine: 1 is the
	// pinned single-thread row, >1 a multicore row of the same workload
	// (same NNZ and Error — the kernels are thread-count-invariant).
	// Absent (0) in snapshots written before the field existed, meaning 1.
	ThreadsPerMachine int `json:"threads_per_machine,omitempty"`
	// Init is the run's initialization scheme ("topfiber" for the
	// data-aware init rows). Absent ("") in snapshots written before the
	// field existed, meaning the fiber-sample default.
	Init string `json:"init,omitempty"`
}

// BenchSnapshot is the top-level BENCH_<n>.json document.
type BenchSnapshot struct {
	Index      int           `json:"index"`
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benches    []BenchRecord `json:"benches"`
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchIndex returns one past the highest BENCH_<n>.json index in dir.
func nextBenchIndex(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	next := 0
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n+1 > next {
			next = n + 1
		}
	}
	return next, nil
}

// runJSONBench measures every Factorize micro-benchmark — the pinned
// single-thread rows, a multicore row per workload when threads > 1, and
// a topfiber-init row per workload — and writes the snapshot to dir,
// returning the written path. The multicore rows must reproduce the same
// init's pinned Error exactly; a divergence means the parallel kernels
// broke determinism and fails the run. The init rows carry their own
// pinned fingerprint: -compare diffs them against the same init only, so
// the random-vs-topfiber cost difference is tracked without ever
// confusing the two result fingerprints.
func runJSONBench(dir string, threads int, progress *os.File) (string, error) {
	idx, err := nextBenchIndex(dir)
	if err != nil {
		return "", err
	}
	snap := BenchSnapshot{
		Index:      idx,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	type benchRow struct {
		tpm  int
		init dbtf.InitScheme
	}
	rows := []benchRow{{1, dbtf.InitFiberSample}}
	if threads > 1 {
		rows = append(rows, benchRow{threads, dbtf.InitFiberSample})
	}
	rows = append(rows, benchRow{1, dbtf.InitTopFiber})
	for _, fb := range factorizeBenches {
		x := fb.tensor()
		pinnedError := map[dbtf.InitScheme]int64{}
		for _, row := range rows {
			opt := fb.options(row.tpm, row.init)
			// One instrumented run for the simulated makespan and the
			// result fingerprint, outside the timed loop.
			res, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				return "", fmt.Errorf("%s: %w", fb.Name, err)
			}
			if row.tpm == 1 {
				pinnedError[row.init] = res.Error
			} else if res.Error != pinnedError[row.init] {
				return "", fmt.Errorf("%s (init=%v): error %d at %d threads, %d pinned — parallel kernels broke determinism",
					fb.Name, row.init, res.Error, row.tpm, pinnedError[row.init])
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := dbtf.Factorize(context.Background(), x, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
			rec := BenchRecord{
				Name:              fb.Name,
				Iterations:        r.N,
				NsPerOp:           float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:        r.AllocedBytesPerOp(),
				AllocsPerOp:       r.AllocsPerOp(),
				SimMakespanNs:     res.SimTime.Nanoseconds(),
				NNZ:               x.NNZ(),
				Error:             res.Error,
				ThreadsPerMachine: row.tpm,
			}
			// The fiber-sample default is written as "" so snapshots from
			// before the field existed compare as the same configuration.
			if row.init != dbtf.InitFiberSample {
				rec.Init = row.init.String()
			}
			snap.Benches = append(snap.Benches, rec)
			if progress != nil {
				fmt.Fprintf(progress, "%-16s T=%-2d init=%-8v %12.0f ns/op %8d allocs/op %10d B/op  sim %v  err %d\n",
					rec.Name, row.tpm, row.init, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp, res.SimTime.Round(time.Microsecond), rec.Error)
			}
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", idx))
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// loadSnapshot reads one BENCH_<n>.json document.
func loadSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// threadsKey normalizes the pre-field snapshots: absent means pinned.
func threadsKey(t int) int {
	if t < 1 {
		return 1
	}
	return t
}

// initKey normalizes the pre-field snapshots: absent means the
// fiber-sample default.
func initKey(s string) string {
	if s == "" {
		return "fiber"
	}
	return s
}

// compareSnapshots is the regression gate behind -compare: every record of
// cur whose (name, threads, init) triple also appears in prev must not
// regress ns/op by more than maxGrowth (0.10 = +10%), and must reproduce
// prev's workload fingerprint (NNZ, Error) exactly — per init scheme, so
// a topfiber row is never held to the fiber-sample fingerprint. Records
// without a counterpart — e.g. a new multicore or init row — pass
// vacuously. Returns one line per violation, empty when the gate passes.
func compareSnapshots(cur, prev *BenchSnapshot, maxGrowth float64) []string {
	type key struct {
		name    string
		threads int
		init    string
	}
	keyOf := func(r BenchRecord) key {
		return key{r.Name, threadsKey(r.ThreadsPerMachine), initKey(r.Init)}
	}
	prevBy := make(map[key]BenchRecord, len(prev.Benches))
	for _, r := range prev.Benches {
		prevBy[keyOf(r)] = r
	}
	var violations []string
	for _, r := range cur.Benches {
		p, ok := prevBy[keyOf(r)]
		if !ok {
			continue
		}
		if r.NNZ != p.NNZ || r.Error != p.Error {
			violations = append(violations, fmt.Sprintf(
				"%s (T=%d init=%s): workload fingerprint changed: nnz %d→%d, error %d→%d",
				r.Name, threadsKey(r.ThreadsPerMachine), initKey(r.Init), p.NNZ, r.NNZ, p.Error, r.Error))
			continue
		}
		if limit := p.NsPerOp * (1 + maxGrowth); r.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s (T=%d init=%s): %.0f ns/op vs %.0f baseline (+%.1f%% > +%.0f%% allowed)",
				r.Name, threadsKey(r.ThreadsPerMachine), initKey(r.Init), r.NsPerOp, p.NsPerOp,
				100*(r.NsPerOp/p.NsPerOp-1), 100*maxGrowth))
		}
	}
	return violations
}
