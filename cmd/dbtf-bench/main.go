// Command dbtf-bench regenerates the tables and figures of the paper's
// evaluation section on scaled-down workloads. Every artifact from
// DESIGN.md's experiment index is available by its identifier.
//
// Usage:
//
//	dbtf-bench -list
//	dbtf-bench -exp fig1a [-budget 30s] [-machines 16] [-scale 1.0]
//	dbtf-bench -exp all
//	dbtf-bench -json [-out DIR] [-threads T] [-compare BENCH_<n>.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dbtf"
	"dbtf/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbtf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbtf-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment id (see -list), or \"all\"")
		list     = fs.Bool("list", false, "list available experiments and exit")
		budget   = fs.Duration("budget", 30*time.Second, "per-run time budget (stands in for the paper's o.o.t. walls)")
		machines = fs.Int("machines", 16, "simulated cluster size")
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		seed     = fs.Int64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print per-run progress")
		jsonOut  = fs.Bool("json", false, "run the Factorize micro-benchmarks and write a BENCH_<n>.json snapshot")
		outDir   = fs.String("out", ".", "output directory for -json snapshots")
		threads  = fs.Int("threads", 1, "with -json: also record multicore rows at this ThreadsPerMachine")
		compare  = fs.String("compare", "", "with -json: fail if any Factorize bench regresses >10% ns/op vs this BENCH_<n>.json")
		traceOut = fs.String("trace", "", "write a structured trace of every DBTF run to this file")
		traceFmt = fs.String("trace-format", "jsonl", "trace format: jsonl or chrome")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFmt != "jsonl" && *traceFmt != "chrome" {
		return fmt.Errorf("-trace-format %q (want jsonl or chrome)", *traceFmt)
	}
	if *traceOut != "" && *jsonOut {
		return fmt.Errorf("-trace does not apply to -json micro-benchmarks")
	}

	if *jsonOut {
		progress := os.Stderr
		if !*verbose {
			progress = nil
		}
		path, err := runJSONBench(*outDir, *threads, progress)
		if err != nil {
			return err
		}
		fmt.Println(path)
		if *compare != "" {
			prev, err := loadSnapshot(*compare)
			if err != nil {
				return err
			}
			cur, err := loadSnapshot(path)
			if err != nil {
				return err
			}
			if violations := compareSnapshots(cur, prev, 0.10); len(violations) > 0 {
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "regression:", v)
				}
				return fmt.Errorf("%d benchmark regression(s) vs %s", len(violations), *compare)
			}
			fmt.Fprintf(os.Stderr, "no regressions vs %s\n", *compare)
		}
		return nil
	}
	if *compare != "" {
		return fmt.Errorf("-compare requires -json")
	}

	if *list {
		fmt.Printf("%-18s %s\n", "ID", "REPRODUCES")
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("-exp is required (or -list)")
	}

	cfg := experiments.Config{
		Budget:   *budget,
		Machines: *machines,
		Scale:    *scale,
		Seed:     *seed,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		sink := dbtf.NewJSONLTrace(f)
		if *traceFmt == "chrome" {
			sink = dbtf.NewChromeTrace(f)
		}
		tracer := dbtf.NewTracer(sink)
		cfg.Tracer = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dbtf-bench: writing trace %s: %v\n", *traceOut, err)
			}
		}()
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.Lookup(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		todo = []experiments.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		tbl := e.Run(cfg)
		tbl.Format(os.Stdout)
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s completed in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
