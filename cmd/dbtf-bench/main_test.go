package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresExp(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -exp accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable3(t *testing.T) {
	// table3 only generates datasets; it is the cheapest real experiment.
	if err := run([]string{"-exp", "table3", "-scale", "0.15"}); err != nil {
		t.Fatal(err)
	}
}
