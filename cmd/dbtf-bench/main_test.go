package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresExp(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -exp accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable3(t *testing.T) {
	// table3 only generates datasets; it is the cheapest real experiment.
	if err := run([]string{"-exp", "table3", "-scale", "0.15"}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareRequiresJSON(t *testing.T) {
	if err := run([]string{"-compare", "BENCH_0.json"}); err == nil {
		t.Fatal("-compare without -json accepted")
	}
}

func snapOf(recs ...BenchRecord) *BenchSnapshot { return &BenchSnapshot{Benches: recs} }

func TestCompareSnapshotsGate(t *testing.T) {
	base := BenchRecord{Name: "FactorizeDim32", NsPerOp: 1000, NNZ: 5, Error: 3}
	cases := []struct {
		name       string
		cur        BenchRecord
		violations int
	}{
		{"within budget", BenchRecord{Name: "FactorizeDim32", NsPerOp: 1099, NNZ: 5, Error: 3}, 0},
		{"faster", BenchRecord{Name: "FactorizeDim32", NsPerOp: 500, NNZ: 5, Error: 3}, 0},
		{"regressed", BenchRecord{Name: "FactorizeDim32", NsPerOp: 1200, NNZ: 5, Error: 3}, 1},
		{"result changed", BenchRecord{Name: "FactorizeDim32", NsPerOp: 900, NNZ: 5, Error: 4}, 1},
		{"new bench passes vacuously", BenchRecord{Name: "FactorizeDim256", NsPerOp: 9e9, NNZ: 1, Error: 1}, 0},
		// A multicore row has no counterpart in a pinned-only baseline.
		{"new multicore row", BenchRecord{Name: "FactorizeDim32", NsPerOp: 9e9, NNZ: 5, Error: 3, ThreadsPerMachine: 4}, 0},
		// threads_per_machine absent in old snapshots means pinned: the
		// explicit T=1 row still matches it.
		{"explicit T=1 matches legacy", BenchRecord{Name: "FactorizeDim32", NsPerOp: 1200, NNZ: 5, Error: 3, ThreadsPerMachine: 1}, 1},
		// A topfiber row has no counterpart in a default-init-only baseline:
		// its different Error must NOT read as a fingerprint change.
		{"new init row passes vacuously", BenchRecord{Name: "FactorizeDim32", NsPerOp: 9e9, NNZ: 5, Error: 7, Init: "topfiber"}, 0},
		// init absent in old snapshots means the fiber-sample default: an
		// explicit "fiber" row still matches it.
		{"explicit fiber matches legacy", BenchRecord{Name: "FactorizeDim32", NsPerOp: 1200, NNZ: 5, Error: 3, Init: "fiber"}, 1},
	}
	for _, tc := range cases {
		got := compareSnapshots(snapOf(tc.cur), snapOf(base), 0.10)
		if len(got) != tc.violations {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(got), got, tc.violations)
		}
	}
}

func TestCompareSnapshotsInitDimension(t *testing.T) {
	// Once a baseline carries both init rows, each cur row is held to its
	// own init's fingerprint and budget — never the other's.
	base := snapOf(
		BenchRecord{Name: "FactorizeDim32", NsPerOp: 1000, NNZ: 5, Error: 3},
		BenchRecord{Name: "FactorizeDim32", NsPerOp: 800, NNZ: 5, Error: 7, Init: "topfiber"},
	)
	ok := snapOf(
		BenchRecord{Name: "FactorizeDim32", NsPerOp: 1050, NNZ: 5, Error: 3},
		BenchRecord{Name: "FactorizeDim32", NsPerOp: 820, NNZ: 5, Error: 7, Init: "topfiber"},
	)
	if got := compareSnapshots(ok, base, 0.10); len(got) != 0 {
		t.Fatalf("matched init rows flagged: %v", got)
	}
	drifted := snapOf(BenchRecord{Name: "FactorizeDim32", NsPerOp: 820, NNZ: 5, Error: 8, Init: "topfiber"})
	got := compareSnapshots(drifted, base, 0.10)
	if len(got) != 1 || !strings.Contains(got[0], "init=topfiber") {
		t.Fatalf("topfiber fingerprint drift not attributed: %v", got)
	}
}
