// Command dbtf-tracecheck validates a JSONL run trace written by
// `dbtf -trace` (or `dbtf-bench -trace`) against the schema and the
// structural invariants of package internal/trace: the event types are
// known, sequence numbers strictly increase, the simulated clock is
// monotone within each run, spans pair and nest correctly, machine losses
// land on stage boundaries, and folding each run's events reproduces the
// run's final stats snapshot exactly.
//
// Usage:
//
//	dbtf-tracecheck trace.jsonl
//	dbtf -trace /dev/stdout ... | dbtf-tracecheck -
//
// On success it prints a one-line summary per stream and exits 0; the
// first violation is reported with its sequence number and exits 1.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"dbtf/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbtf-tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dbtf-tracecheck <trace.jsonl | ->")
	}
	var r io.Reader = os.Stdin
	name := "stdin"
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		r, name = f, args[0]
	}
	sum, err := trace.ValidateJSONL(r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: OK — %d events, %d runs, %d stages\n", name, sum.Events, sum.Runs, sum.Stages)
	types := make([]string, 0, len(sum.ByType))
	for t := range sum.ByType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-20s %d\n", t, sum.ByType[trace.Type(t)])
	}
	return nil
}
