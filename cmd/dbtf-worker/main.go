// Command dbtf-worker runs one DBTF cluster machine as a standalone OS
// process: a TCP stage server that a dbtf coordinator (cmd/dbtf with
// -transport tcp, or dbtf.Options.Workers) dials, replicates state to,
// and ships column-update and error stages to.
//
// Usage:
//
//	dbtf-worker [-listen 127.0.0.1:0]
//
// The resolved listen address is printed to stdout as
//
//	dbtf-worker listening on <addr>
//
// so scripts (and the repo's multi-process tests) can start workers on
// ephemeral ports and harvest the addresses. The process is stateless
// across coordinator sessions — every new run begins with a setup push
// that resets it — so one long-lived worker can serve many runs, and a
// worker restarted after a crash rejoins a live run at the next stage
// boundary via the coordinator's replay.
//
// SIGTERM and SIGINT drain gracefully: the listener closes, in-flight
// stage batches finish and are answered (bounded by -drain), and the
// process exits 0. The coordinator observes the closed connection as a
// machine loss at the next stage boundary and reroutes — no batch is
// ever cut off mid-reply.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dbtf/internal/core"
	"dbtf/internal/transport/tcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbtf-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbtf-worker", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks an ephemeral port)")
		threads = fs.Int("threads", 1, "OS threads this machine may use inside a stage batch (results are identical for any value)")
		drain   = fs.Duration("drain", 30*time.Second, "max time to wait for in-flight stage batches on SIGTERM/SIGINT")
		quiet   = fs.Bool("q", false, "suppress per-connection log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain must be positive, got %v", *drain)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The harvestable address line; tests and the README walkthrough
	// depend on its exact format.
	fmt.Printf("dbtf-worker listening on %s\n", lis.Addr())
	logger := log.New(os.Stderr, "dbtf-worker: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = nil
	}

	srv := tcp.NewServer(core.NewWorkerThreads(*threads), logf)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	draining := make(chan struct{})
	shutDone := make(chan error, 1)
	go func() {
		sig := <-sigc
		signal.Stop(sigc)
		// Harvestable like the address line: tests assert the drain ran.
		fmt.Printf("dbtf-worker received %v, draining\n", sig)
		close(draining)
		shutDone <- srv.Shutdown(*drain)
	}()

	if err := srv.Serve(lis); err != nil {
		return err
	}
	select {
	case <-draining:
		// Serve unblocked because of the signal; wait for the drain.
		return <-shutDone
	default:
		// Serve ended without a signal (listener closed externally).
		return nil
	}
}
