package main

import (
	"path/filepath"
	"testing"

	"dbtf"
)

func TestParseDims(t *testing.T) {
	i, j, k, err := parseDims("4, 5,6")
	if err != nil || i != 4 || j != 5 || k != 6 {
		t.Fatalf("parseDims = %d,%d,%d (%v)", i, j, k, err)
	}
	for _, bad := range []string{"4,5", "4,5,6,7", "a,b,c", "0,1,1", "-1,2,3"} {
		if _, _, _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q) accepted", bad)
		}
	}
}

func TestRunRequiresOutput(t *testing.T) {
	if err := run([]string{"-type", "random"}); err == nil {
		t.Fatal("missing -o accepted")
	}
}

func TestRunUnknownType(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.tns")
	if err := run([]string{"-type", "bogus", "-o", out}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestRunRandom(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.tns")
	if err := run([]string{"-type", "random", "-dims", "8,8,8", "-density", "0.1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	x, err := dbtf.ReadTensorFile(out)
	if err != nil {
		t.Fatal(err)
	}
	i, j, k := x.Dims()
	if i != 8 || j != 8 || k != 8 || x.NNZ() == 0 {
		t.Fatalf("generated %dx%dx%d nnz=%d", i, j, k, x.NNZ())
	}
}

func TestRunFactorsWithTruth(t *testing.T) {
	dir := t.TempDir()
	noisy := filepath.Join(dir, "noisy.tns")
	clean := filepath.Join(dir, "clean.tns")
	args := []string{"-type", "factors", "-dims", "16,16,16", "-rank", "2",
		"-factor-density", "0.3", "-additive", "0.1", "-o", noisy, "-truth", clean}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	xn, err := dbtf.ReadTensorFile(noisy)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := dbtf.ReadTensorFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	if xn.NNZ() <= xc.NNZ() {
		t.Fatalf("additive noise missing: %d vs %d", xn.NNZ(), xc.NNZ())
	}
}

func TestRunDatasetTypes(t *testing.T) {
	for _, typ := range []string{"facebook", "dblp", "ddos-s", "ddos-l", "nell-s", "nell-l"} {
		out := filepath.Join(t.TempDir(), typ+".tns")
		if err := run([]string{"-type", typ, "-scale", "0.15", "-o", out}); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		x, err := dbtf.ReadTensorFile(out)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if x.NNZ() == 0 {
			t.Fatalf("%s: empty tensor", typ)
		}
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list", "-scale", "0.15"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.btns")
	if err := run([]string{"-type", "random", "-dims", "10,10,10", "-density", "0.1", "-binary", "-o", out}); err != nil {
		t.Fatal(err)
	}
	x, err := dbtf.ReadTensorFile(out) // format sniffed by magic
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() == 0 {
		t.Fatal("empty binary tensor")
	}
}
