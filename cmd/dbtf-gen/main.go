// Command dbtf-gen generates Boolean tensors: uniform random tensors,
// planted-factor tensors with additive/destructive noise, and the six
// synthetic stand-ins for the paper's Table III real-world datasets.
//
// Usage:
//
//	dbtf-gen -type random -dims 256,256,256 -density 0.01 -o x.tns
//	dbtf-gen -type factors -dims 128,128,128 -rank 10 -factor-density 0.1 \
//	         -additive 0.1 -destructive 0.05 -o noisy.tns [-truth clean.tns]
//	dbtf-gen -type facebook -scale 1.0 -o facebook.tns
//	dbtf-gen -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dbtf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbtf-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbtf-gen", flag.ContinueOnError)
	var (
		typ           = fs.String("type", "random", "tensor type: random, factors, facebook, dblp, ddos-s, ddos-l, nell-s, nell-l")
		dims          = fs.String("dims", "64,64,64", "mode dimensions I,J,K (random and factors types)")
		density       = fs.Float64("density", 0.01, "tensor density (random type)")
		rank          = fs.Int("rank", 10, "planted rank (factors type)")
		factorDensity = fs.Float64("factor-density", 0.1, "planted factor density (factors type)")
		additive      = fs.Float64("additive", 0, "additive noise level (factors type)")
		destructive   = fs.Float64("destructive", 0, "destructive noise level (factors type)")
		scale         = fs.Float64("scale", 1.0, "size scale for dataset stand-ins")
		seed          = fs.Int64("seed", 1, "random seed")
		out           = fs.String("o", "", "output tensor file (required unless -list)")
		binaryOut     = fs.Bool("binary", false, "write the compact binary format instead of text")
		truthOut      = fs.String("truth", "", "also write the noise-free tensor here (factors type)")
		list          = fs.Bool("list", false, "list the Table III dataset stand-ins and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	if *list {
		fmt.Printf("%-14s %-32s %-16s %s\n", "NAME", "MODES", "SHAPE", "NNZ")
		for _, d := range dbtf.StandinDatasets(rng, *scale) {
			i, j, k := d.X.Dims()
			fmt.Printf("%-14s %-32s %-16s %d\n", d.Name, d.Modes, fmt.Sprintf("%dx%dx%d", i, j, k), d.X.NNZ())
		}
		return nil
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-o is required")
	}

	var x *dbtf.Tensor
	switch *typ {
	case "random":
		i, j, k, err := parseDims(*dims)
		if err != nil {
			return err
		}
		x = dbtf.RandomTensor(rng, i, j, k, *density)
	case "factors":
		i, j, k, err := parseDims(*dims)
		if err != nil {
			return err
		}
		truth, _ := dbtf.TensorFromRandomFactors(rng, i, j, k, *rank, *factorDensity)
		if *truthOut != "" {
			if err := truth.WriteFile(*truthOut); err != nil {
				return err
			}
			fmt.Printf("wrote %s (noise-free, %d nonzeros)\n", *truthOut, truth.NNZ())
		}
		x = dbtf.AddNoise(rng, truth, *additive, *destructive)
	case "facebook", "dblp", "ddos-s", "ddos-l", "nell-s", "nell-l":
		name := map[string]string{
			"facebook": "Facebook", "dblp": "DBLP",
			"ddos-s": "CAIDA-DDoS-S", "ddos-l": "CAIDA-DDoS-L",
			"nell-s": "NELL-S", "nell-l": "NELL-L",
		}[*typ]
		for _, d := range dbtf.StandinDatasets(rng, *scale) {
			if d.Name == name {
				x = d.X
				break
			}
		}
	default:
		return fmt.Errorf("unknown type %q", *typ)
	}

	write := x.WriteFile
	if *binaryOut {
		write = x.WriteBinaryFile
	}
	if err := write(*out); err != nil {
		return err
	}
	i, j, k := x.Dims()
	fmt.Printf("wrote %s: %dx%dx%d, %d nonzeros (density %.4g)\n", *out, i, j, k, x.NNZ(), x.Density())
	return nil
}

func parseDims(s string) (i, j, k int, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("dims must be I,J,K, got %q", s)
	}
	vals := make([]int, 3)
	for n, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("invalid dimension %q", p)
		}
		vals[n] = v
	}
	return vals[0], vals[1], vals[2], nil
}
