package dbtf_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dbtf"
)

// TestMachineLossChaosSweep is the executor-loss regression: under seeded
// machine-loss schedules at rates up to 0.2 — with and without rejoin —
// the decomposition must reassign the dead machines' work to survivors,
// rebuild their caches, and still produce bit-identical factors and error
// to the loss-free run; losses may only cost (simulated) time and traffic.
func TestMachineLossChaosSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	rng := rand.New(rand.NewSource(5))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 24, 24, 24, 4, 0.25)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
	opt := dbtf.Options{Rank: 6, Machines: 4, MaxIter: 4, MinIter: 4, Seed: 5}

	clean, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatal(err)
	}

	var totalLosses, totalRecoveries int64
	for _, tc := range []struct {
		rate   float64
		rejoin int
	}{{0.02, 0}, {0.1, 3}, {0.2, 2}} {
		t.Run(fmt.Sprintf("loss rate %v rejoin %d", tc.rate, tc.rejoin), func(t *testing.T) {
			opt := opt
			opt.Faults = &dbtf.FaultPlan{
				Seed:               77,
				MachineLossRate:    tc.rate,
				MachineRejoinAfter: tc.rejoin,
			}
			res, err := dbtf.Factorize(context.Background(), x, opt)
			if err != nil {
				t.Fatalf("decomposition did not survive machine losses: %v", err)
			}
			if res.Error != clean.Error {
				t.Errorf("error under machine loss %d != loss-free %d", res.Error, clean.Error)
			}
			if !res.A.Equal(clean.A) || !res.B.Equal(clean.B) || !res.C.Equal(clean.C) {
				t.Error("factors under machine loss differ from the loss-free run")
			}
			if res.Stats.Recoveries < res.Stats.MachineLosses {
				t.Errorf("Recoveries %d < MachineLosses %d: every loss in a completed run must be recovered",
					res.Stats.Recoveries, res.Stats.MachineLosses)
			}
			if res.Stats.MachineLosses > 0 {
				// Recovery is priced: re-shipped partitions and re-fetched
				// broadcast state must exceed the loss-free traffic.
				if res.Stats.ShuffledBytes <= clean.Stats.ShuffledBytes {
					t.Errorf("ShuffledBytes %d <= loss-free %d despite %d machine losses",
						res.Stats.ShuffledBytes, clean.Stats.ShuffledBytes, res.Stats.MachineLosses)
				}
				if res.Stats.BroadcastBytes <= clean.Stats.BroadcastBytes {
					t.Errorf("BroadcastBytes %d <= loss-free %d despite %d machine losses",
						res.Stats.BroadcastBytes, clean.Stats.BroadcastBytes, res.Stats.MachineLosses)
				}
			}
			totalLosses += res.Stats.MachineLosses
			totalRecoveries += res.Stats.Recoveries
		})
	}
	if totalLosses == 0 || totalRecoveries == 0 {
		t.Fatalf("sweep injected %d losses / %d recoveries; workload too small for the regression",
			totalLosses, totalRecoveries)
	}

	// The engine joins every worker and speculative backup before each
	// stage returns, so the sweep must leave no goroutines behind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before sweep, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCheckpointResumePublicAPI exercises the kill/resume invariant through
// the public Options surface: a run killed after its second checkpoint and
// resumed must reproduce the uninterrupted result bit for bit.
func TestCheckpointResumePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 20, 20, 20, 3, 0.25)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
	base := dbtf.Options{Rank: 4, Machines: 3, MaxIter: 5, MinIter: 5, Seed: 6}

	full := base
	full.CheckpointDir = t.TempDir()
	uninterrupted, err := dbtf.Factorize(context.Background(), x, full)
	if err != nil {
		t.Fatal(err)
	}
	if uninterrupted.Stats.CheckpointBytes <= 0 {
		t.Fatalf("CheckpointBytes = %d with checkpointing on, want > 0", uninterrupted.Stats.CheckpointBytes)
	}

	killed := base
	killed.CheckpointDir = t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	killed.Trace = func(format string, args ...any) {
		var iter, bytes int
		if n, _ := fmt.Sscanf(fmt.Sprintf(format, args...), "checkpoint: iteration %d, %d bytes", &iter, &bytes); n == 2 {
			if seen++; seen == 2 {
				cancel()
			}
		}
	}
	if _, err := dbtf.Factorize(ctx, x, killed); err == nil {
		t.Fatal("killed run finished; cancellation did not take")
	}

	killed.Trace = nil
	killed.Resume = true
	resumed, err := dbtf.Factorize(context.Background(), x, killed)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Error != uninterrupted.Error ||
		!resumed.A.Equal(uninterrupted.A) || !resumed.B.Equal(uninterrupted.B) || !resumed.C.Equal(uninterrupted.C) {
		t.Fatal("resumed run is not bit-identical to the uninterrupted run")
	}
}
