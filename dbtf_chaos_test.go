package dbtf_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dbtf"
)

// TestChaosIdenticalOutput is the fault-tolerance regression: under a
// seeded fault plan injecting failures, panics, and stragglers at rates up
// to 0.2, the decomposition must survive the injected faults through
// per-task retry and produce bit-identical factors and error to the
// fault-free run — failures may only cost (simulated) time.
func TestChaosIdenticalOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 24, 24, 24, 4, 0.25)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
	opt := dbtf.Options{Rank: 6, Machines: 4, MaxIter: 4, MinIter: 4, Seed: 1}

	clean, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.InjectedFaults != 0 || clean.Stats.Retries != 0 {
		t.Fatalf("fault-free run reports faults: %+v", clean.Stats)
	}

	opt.Faults = &dbtf.FaultPlan{
		Seed:          42,
		FailureRate:   0.2,
		PanicRate:     0.05,
		StragglerRate: 0.1,
	}
	chaotic, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("decomposition did not survive injected faults: %v", err)
	}

	if chaotic.Stats.InjectedFaults < 10 {
		t.Errorf("InjectedFaults = %d, want >= 10 (workload too small for the regression)",
			chaotic.Stats.InjectedFaults)
	}
	if chaotic.Stats.Retries == 0 {
		t.Error("Stats.Retries = 0 under a 0.2 failure rate")
	}
	if chaotic.Error != clean.Error {
		t.Errorf("error under chaos %d != fault-free %d", chaotic.Error, clean.Error)
	}
	if !chaotic.A.Equal(clean.A) || !chaotic.B.Equal(clean.B) || !chaotic.C.Equal(clean.C) {
		t.Error("factors under chaos differ from the fault-free run")
	}
	// Injected faults must be visible in the simulated clock: every wasted
	// attempt, backoff, and straggler delay is charged there.
	if chaotic.SimTime <= clean.SimTime {
		t.Errorf("SimTime under chaos %v <= fault-free %v; recovery cost not priced",
			chaotic.SimTime, clean.SimTime)
	}
}

// TestChaosFailFastSurfacesNothingToRetry: chaos with FailFast is a no-op
// for fail/panic injection (there is no retry budget to recover with), so
// the run still succeeds and matches the fault-free output.
func TestChaosFailFastStillIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dbtf.RandomTensor(rng, 16, 16, 16, 0.1)
	opt := dbtf.Options{Rank: 3, Machines: 2, MaxIter: 3, MinIter: 3, Seed: 2}
	clean, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.FailFast = true
	opt.Faults = &dbtf.FaultPlan{Seed: 7, FailureRate: 0.3, PanicRate: 0.1}
	res, err := dbtf.Factorize(context.Background(), x, opt)
	if err != nil {
		t.Fatalf("FailFast run failed under injection-only faults: %v", err)
	}
	if res.Error != clean.Error {
		t.Errorf("error %d != fault-free %d", res.Error, clean.Error)
	}
	if res.Stats.InjectedFaults != 0 {
		t.Errorf("InjectedFaults = %d under FailFast, want 0", res.Stats.InjectedFaults)
	}
}

// TestCancellationMidDecomposition: a context cancelled while iterations
// are in flight must surface context.Canceled promptly and leak no
// goroutines.
func TestCancellationMidDecomposition(t *testing.T) {
	before := runtime.NumGoroutine()

	rng := rand.New(rand.NewSource(3))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 32, 32, 32, 4, 0.25)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := false
	start := time.Now()
	_, err := dbtf.Factorize(ctx, x, dbtf.Options{
		Rank: 8, Machines: 4, MaxIter: 50, MinIter: 50, Seed: 3,
		// Trace fires once per completed iteration, so cancelling from it
		// guarantees the context dies mid-decomposition with work left.
		Trace: func(string, ...any) {
			if !cancelled {
				cancelled = true
				cancel()
			}
		},
	})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cancelled {
		t.Fatal("decomposition finished before the first trace line; workload too small")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to surface", elapsed)
	}

	// The engine runs stages synchronously (workers are joined before
	// ForEach returns), so no goroutines may outlive the call. Allow the
	// runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineExpiry: deadline expiry surfaces as DeadlineExceeded, the
// same way the experiments harness marks o.o.t. runs.
func TestDeadlineExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth, _ := dbtf.TensorFromRandomFactors(rng, 32, 32, 32, 4, 0.25)
	x := dbtf.AddNoise(rng, truth, 0.1, 0.1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := dbtf.Factorize(ctx, x, dbtf.Options{
		Rank: 8, Machines: 4, MaxIter: 200, MinIter: 200, Seed: 4,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
