module dbtf

go 1.22
