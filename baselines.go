package dbtf

import (
	"context"

	"dbtf/internal/bcpals"
	"dbtf/internal/walknmerge"
)

// BCPALSOptions configures FactorizeBCPALS; see the fields' documentation
// for defaults.
type BCPALSOptions = bcpals.Options

// BCPALSInit selects BCP_ALS's per-mode initialization; see the exported
// constants.
type BCPALSInit = bcpals.Init

const (
	// BCPALSInitTopFiber initializes each mode with the near-linear greedy
	// top-fiber factorization (default).
	BCPALSInitTopFiber BCPALSInit = bcpals.InitTopFiber
	// BCPALSInitASSO initializes each mode with ASSO, materializing its
	// quadratic column-association matrix — the faithful reproduction of
	// the baseline's historical bottleneck, kept for ablations.
	BCPALSInitASSO BCPALSInit = bcpals.InitASSO
)

// ParseBCPALSInit parses the flag spelling of a BCP_ALS initialization
// ("topfiber", "asso"); the empty string selects the default.
func ParseBCPALSInit(s string) (BCPALSInit, error) { return bcpals.ParseInit(s) }

// BCPALSResult reports a BCP_ALS factorization.
type BCPALSResult = bcpals.Result

// FactorizeBCPALS runs the BCP_ALS baseline (Miettinen, ICDM 2011): a
// single-machine alternating Boolean CP decomposition. By default each
// mode is initialized with the near-linear top-fiber factorization;
// BCPALSInitASSO restores the historical ASSO initialization, whose cost
// is quadratic in the columns of each unfolded tensor. Provided for
// comparison; Factorize is strictly more scalable.
func FactorizeBCPALS(ctx context.Context, x *Tensor, opt BCPALSOptions) (*BCPALSResult, error) {
	return bcpals.Decompose(ctx, x, opt)
}

// WalkNMergeOptions configures FactorizeWalkNMerge.
type WalkNMergeOptions = walknmerge.Options

// WalkNMergeResult reports a Walk'n'Merge factorization.
type WalkNMergeResult = walknmerge.Result

// WalkNMergeBlock is a dense sub-tensor found by Walk'n'Merge.
type WalkNMergeBlock = walknmerge.Block

// FactorizeWalkNMerge runs the Walk'n'Merge baseline (Erdős & Miettinen,
// ICDM 2013): random walks over the nonzero graph discover dense blocks,
// which are merged and converted to rank-1 factors. Provided for
// comparison; Factorize is strictly more scalable.
func FactorizeWalkNMerge(ctx context.Context, x *Tensor, opt WalkNMergeOptions) (*WalkNMergeResult, error) {
	return walknmerge.Decompose(ctx, x, opt)
}
