// Package dbtf implements fast and scalable distributed Boolean tensor
// factorization, reproducing the DBTF algorithm of Park, Oh and Kang
// (ICDE 2017).
//
// Boolean tensor factorization (BTF) decomposes a three-way binary tensor
// X ∈ B^{I×J×K} into binary factor matrices A, B, C minimizing the number
// of cells where X differs from the Boolean sum of rank-1 tensors
// ⋁_r a_:r ∘ b_:r ∘ c_:r (1+1 = 1). BTF yields sparse, directly
// interpretable components from relationship, membership and event data —
// knowledge-base triples, network traffic logs, temporal friendship
// networks — at the price of an NP-hard optimization.
//
// Factorize runs DBTF: a distributed alternating algorithm that never
// materializes the Khatri–Rao product, caches all 2^R Boolean row
// summations per pointwise vector-matrix product, and partitions the
// unfolded tensors vertically so partitions work independently. The
// distributed substrate is a simulated in-process cluster (package-level
// goroutine workers with traffic accounting); see the Machines and
// Partitions options.
//
// The package also provides the two baselines the paper compares against —
// FactorizeBCPALS and FactorizeWalkNMerge — plus tensor construction, I/O,
// synthetic data generation, and evaluation metrics.
//
// # Quick start
//
//	x, _ := dbtf.ReadTensorFile("triples.tns")
//	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{Rank: 10})
//	if err != nil { ... }
//	fmt.Println("error:", res.Error, "relative:", res.RelativeError)
//	for r := 0; r < 10; r++ {
//	    subjects := res.A.Column(r).Indices() // entities of concept r
//	    ...
//	}
package dbtf

import (
	"context"
	"errors"
	"math"
	"runtime"
	"time"

	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/tensor"
	"dbtf/internal/transport"
	"dbtf/internal/transport/tcp"
)

// Options configures Factorize. Zero values select the documented
// defaults.
type Options struct {
	// Rank is the number of components R. Required; 1 ≤ R ≤ MaxRank.
	Rank int
	// MaxIter is the maximum number of alternating iterations T.
	// Default 10.
	MaxIter int
	// MinIter disables the convergence check before this many iterations.
	// Default 1.
	MinIter int
	// InitialSets is the number of initial factor sets L tried in the
	// first iteration, of which the best is kept. Default 1.
	InitialSets int
	// Machines is the simulated cluster size M. Real execution parallelism
	// is bounded by the host CPUs; the simulated-time ledger models M
	// machines. Default: GOMAXPROCS. Ignored when Workers is set.
	Machines int
	// Workers lists TCP addresses of dbtf-worker processes (one logical
	// machine each; see cmd/dbtf-worker). When non-empty the run executes
	// on those real processes instead of the in-process simulated cluster:
	// M is len(Workers), stage work travels over the sockets, and a worker
	// that dies mid-run is recovered exactly like a simulated machine
	// loss. For the same Seed, factors are bit-identical to a simulated
	// run with the same machine count. Incompatible with Faults (fault
	// injection is a property of the simulated backend).
	Workers []string
	// ThreadsPerMachine is the number of OS threads T each simulated
	// machine may use inside a single task: column evaluations split
	// their row ranges T ways across a per-machine worker pool. Results
	// are bit-identical for every T; only wall-clock time changes. The
	// simulated-time ledger still charges single-thread semantics (the
	// wall time the pool saves is charged back to its machine), so
	// SimTime models the same M-machine cluster regardless of T. Default
	// 1. Ignored when Workers is set — each TCP worker process picks its
	// own width via cmd/dbtf-worker's -threads flag.
	ThreadsPerMachine int
	// Partitions is the number of vertical partitions N per unfolded
	// tensor. Default: Machines.
	Partitions int
	// CacheGroupBits is the cache-splitting threshold V: ranks above it
	// split the row-summation tables into ⌈R/V⌉ groups. Default 15.
	CacheGroupBits int
	// Tolerance stops the iteration when the reconstruction error improves
	// by at most this much. Default 0 (stop when no strict improvement).
	Tolerance int64
	// Init selects the initialization scheme. Default InitFiberSample.
	Init InitScheme
	// InitDensity is the factor density used by InitRandom.
	InitDensity float64
	// Seed makes runs deterministic.
	Seed int64
	// MaxRetries bounds the re-execution attempts per failed cluster
	// task; task errors and panics are treated as transient machine
	// failures and retried with exponential simulated backoff. Default 3
	// (Spark's 4 attempts per task). Ignored under FailFast.
	MaxRetries int
	// FailFast disables task retries: the first task failure aborts the
	// run, the engine's pre-fault-tolerance semantics.
	FailFast bool
	// Faults, when non-nil, injects deterministic task failures, panics,
	// straggler delays, and machine losses into the simulated cluster; see
	// FaultPlan. With retries enabled injected faults never change the
	// result, only the simulated makespan and the Stats fault counters.
	Faults *FaultPlan
	// CheckpointDir, when non-empty, enables durable iteration-level
	// checkpointing: every CheckpointEvery iterations (and at the final
	// one) the run's state is written atomically to this directory, so a
	// killed run can be continued bit-identically with Resume.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in iterations. Default 1;
	// meaningful only with CheckpointDir.
	CheckpointEvery int
	// Resume continues from the checkpoint in CheckpointDir instead of
	// initializing; the checkpoint must match this run's configuration
	// and tensor. A missing checkpoint starts fresh. Requires
	// CheckpointDir.
	Resume bool
	// Preempt, when non-nil, is polled once per completed iteration: when
	// it returns true the run checkpoints and stops with an error wrapping
	// ErrPreempted, so a scheduler can evict a running job and later
	// continue it bit-identically with Resume. A run that converged or
	// reached MaxIter finishes instead of preempting. Requires
	// CheckpointDir.
	Preempt func() bool
	// NoCache disables row-summation caching (for ablations only).
	NoCache bool
	// Horizontal switches to horizontal (rank) partitioning (for ablations
	// only; strictly worse, see the paper's Section III-D).
	Horizontal bool
	// Trace, when non-nil, receives human-readable progress lines.
	Trace func(format string, args ...any)
	// Tracer, when non-nil, receives the run's structured event stream:
	// stage/driver/iteration spans, traffic charges, retries, speculation,
	// and machine liveness, on both the wall and the simulated clock. Build
	// one with NewTracer; see cmd/dbtf's -trace flag for the file form.
	Tracer *Tracer
}

// InitScheme selects how initial factor matrices are drawn; see the
// exported constants.
type InitScheme = core.InitScheme

const (
	// InitFiberSample seeds each component from the fiber cross of a
	// random nonzero (default).
	InitFiberSample InitScheme = core.InitFiberSample
	// InitRandom draws factor entries independently at InitDensity, as the
	// paper's Algorithm 2 states literally; on sparse tensors the greedy
	// update then collapses to all-zero factors. Kept for ablations.
	InitRandom InitScheme = core.InitRandom
	// InitTopFiber seeds components greedily from the tensor's top fibers
	// (topFiberM): deterministic in the data alone, near-linear, and
	// usually the fastest route to convergence. Rejects InitialSets > 1 —
	// every set would be identical.
	InitTopFiber InitScheme = core.InitTopFiber
)

// ParseInitScheme parses the flag spelling of an initialization scheme
// ("fiber", "random", "topfiber"); the empty string selects the default.
func ParseInitScheme(s string) (InitScheme, error) { return core.ParseInitScheme(s) }

// MaxRank is the largest supported decomposition rank.
const MaxRank = 64

// ErrPreempted is returned (wrapped) by Factorize when Options.Preempt
// stops a run at an iteration boundary; the checkpoint written at that
// boundary makes a later Resume bit-identical to an uninterrupted run.
var ErrPreempted = core.ErrPreempted

// Factors groups the three binary factor matrices of a decomposition:
// A is I×R, B is J×R, C is K×R.
type Factors struct {
	A, B, C *FactorMatrix
}

// Result reports a DBTF factorization.
type Result struct {
	Factors
	// Error is the Boolean reconstruction error |X ⊕ X̂|.
	Error int64
	// RelativeError is Error / |X| (1.0 = trivial all-zero factors).
	RelativeError float64
	// Iterations is the number of alternating iterations executed.
	Iterations int
	// Converged reports whether the tolerance criterion stopped the run
	// before MaxIter.
	Converged bool
	// InitialErrors holds the error of each initial set after the first
	// iteration.
	InitialErrors []int64
	// IterationErrors holds the reconstruction error after every
	// iteration; the greedy column commits make it monotonically
	// non-increasing.
	IterationErrors []int64
	// Stats reports the simulated cluster's traffic counters: shuffled,
	// broadcast, and collected bytes.
	Stats ClusterStats
	// SimTime is the simulated elapsed time on Machines machines.
	SimTime time.Duration
	// WallTime is the real elapsed time.
	WallTime time.Duration
}

// Factorize computes the rank-R Boolean CP decomposition of x with DBTF.
// The context bounds the run; cancellation and deadline expiry surface as
// the context's error.
func Factorize(ctx context.Context, x *Tensor, opt Options) (out *Result, err error) {
	machines := opt.Machines
	if machines == 0 {
		machines = runtime.GOMAXPROCS(0)
	}
	var trans transport.Transport
	if len(opt.Workers) > 0 {
		if opt.Faults != nil {
			return nil, errors.New("dbtf: Faults requires the simulated backend (unset Workers)")
		}
		machines = len(opt.Workers)
		co, derr := tcp.DialContext(ctx, tcp.Config{Addrs: opt.Workers})
		if derr != nil {
			return nil, derr
		}
		defer func() {
			if cerr := co.Close(); cerr != nil && err == nil {
				out, err = nil, cerr
			}
		}()
		trans = co
	}
	cl := cluster.New(cluster.Config{
		Machines:          machines,
		ThreadsPerMachine: opt.ThreadsPerMachine,
		MaxRetries:        opt.MaxRetries,
		FailFast:          opt.FailFast,
		Faults:            opt.Faults,
		Transport:         trans,
		Tracer:            opt.Tracer,
	})
	res, err := core.Decompose(ctx, x, cl, core.Options{
		Rank:            opt.Rank,
		MaxIter:         opt.MaxIter,
		MinIter:         opt.MinIter,
		InitialSets:     opt.InitialSets,
		Partitions:      opt.Partitions,
		GroupBits:       opt.CacheGroupBits,
		Tolerance:       opt.Tolerance,
		Init:            opt.Init,
		InitDensity:     opt.InitDensity,
		Seed:            opt.Seed,
		CheckpointDir:   opt.CheckpointDir,
		CheckpointEvery: opt.CheckpointEvery,
		Resume:          opt.Resume,
		Preempt:         opt.Preempt,
		NoCache:         opt.NoCache,
		Horizontal:      opt.Horizontal,
		Trace:           opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	out = &Result{
		Factors:         Factors{A: res.A, B: res.B, C: res.C},
		Error:           res.Error,
		Iterations:      res.Iterations,
		Converged:       res.Converged,
		InitialErrors:   res.InitialErrors,
		IterationErrors: res.IterationErrors,
		Stats:           res.Stats,
		SimTime:         res.SimTime,
		WallTime:        res.WallTime,
	}
	if x.NNZ() > 0 {
		out.RelativeError = float64(res.Error) / float64(x.NNZ())
	} else if res.Error > 0 {
		// Same convention as metrics.RelativeError: a nonempty
		// reconstruction of an empty tensor has no normalizer.
		out.RelativeError = math.Inf(1)
	}
	return out, nil
}

// Reconstruct materializes the Boolean reconstruction of the factors as a
// tensor. Intended for small tensors; for scoring use ReconstructError.
func (f Factors) Reconstruct() *Tensor {
	return tensor.Reconstruct(f.A, f.B, f.C)
}

// ReconstructError returns |x ⊕ X̂| for this factor set without
// materializing the reconstruction.
func (f Factors) ReconstructError(x *Tensor) int64 {
	return tensor.ReconstructError(x, f.A, f.B, f.C)
}
