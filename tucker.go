package dbtf

import (
	"context"
	"runtime"

	"dbtf/internal/cluster"
	"dbtf/internal/core"
	"dbtf/internal/tucker"
)

// TuckerOptions configures FactorizeTucker.
type TuckerOptions struct {
	// CPRank is the rank of the initial Boolean CP decomposition.
	// Required; 1 ≤ CPRank ≤ MaxRank.
	CPRank int
	// MergeThreshold is the Jaccard similarity at or above which two
	// factor columns of the same mode merge (shrinking the core).
	// Default 0.8.
	MergeThreshold float64
	// MaxSweeps bounds the core-refinement sweeps. Default 2.
	MaxSweeps int
	// Machines is the simulated cluster size for the CP phase. Default:
	// GOMAXPROCS.
	Machines int
	// InitialSets, Seed and MaxIter configure the CP phase as in Options.
	InitialSets int
	Seed        int64
	MaxIter     int
}

// TuckerResult reports a Boolean Tucker decomposition
// X ≈ ⋁_{g_pqs=1} a_:p ∘ b_:q ∘ c_:s.
type TuckerResult struct {
	// Core is the binary core tensor G ∈ B^{P×Q×S}.
	Core *Tensor
	// A, B, C are the binary factor matrices (I×P, J×Q, K×S).
	A, B, C *FactorMatrix
	// Error is |X ⊕ X̂|.
	Error int64
	// CPError is the error of the initial CP decomposition; Error never
	// exceeds it.
	CPError int64
}

// FactorizeTucker computes a Boolean Tucker decomposition of x: DBTF's
// Boolean CP decomposition at CPRank, followed by per-mode merging of
// near-duplicate factor columns (with core folding) and greedy core
// refinement — the CP-to-Tucker construction of the Walk'n'Merge paper
// that the DBTF paper's related work discusses.
func FactorizeTucker(ctx context.Context, x *Tensor, opt TuckerOptions) (*TuckerResult, error) {
	machines := opt.Machines
	if machines == 0 {
		machines = runtime.GOMAXPROCS(0)
	}
	cl := cluster.New(cluster.Config{Machines: machines})
	res, err := tucker.Decompose(ctx, x, cl, tucker.Options{
		CPRank:         opt.CPRank,
		MergeThreshold: opt.MergeThreshold,
		MaxSweeps:      opt.MaxSweeps,
		CP: core.Options{
			InitialSets: opt.InitialSets,
			Seed:        opt.Seed,
			MaxIter:     opt.MaxIter,
		},
	})
	if err != nil {
		return nil, err
	}
	return &TuckerResult{
		Core: res.Core, A: res.A, B: res.B, C: res.C,
		Error: res.Error, CPError: res.CPError,
	}, nil
}

// TuckerReconstructError returns |x ⊕ X̂| for a Tucker model.
func TuckerReconstructError(x *Tensor, r *TuckerResult) int64 {
	return tucker.ReconstructError(x, r.Core, r.A, r.B, r.C)
}

// TuckerReconstruct materializes the Tucker reconstruction as a tensor.
// Intended for small tensors.
func TuckerReconstruct(r *TuckerResult) *Tensor {
	return tucker.Reconstruct(r.Core, r.A, r.B, r.C)
}
