package dbtf_test

import (
	"context"
	"testing"

	"dbtf"
)

func TestFactorizeTuckerSharedStructure(t *testing.T) {
	// Two components sharing the same mode-1 column: Tucker merges them
	// into a single core slice and still fits exactly.
	var coords []dbtf.Coord
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 5; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
		for j := 6; j < 11; j++ {
			for k := 6; k < 11; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
	}
	x, err := dbtf.TensorFromCoords(12, 12, 12, coords)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbtf.FactorizeTucker(context.Background(), x, dbtf.TuckerOptions{
		CPRank: 2, MergeThreshold: 0.99, Machines: 2, InitialSets: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Fatalf("Tucker error %d, want 0", res.Error)
	}
	p, q, s := res.Core.Dims()
	if p != 1 || q != 2 || s != 2 {
		t.Fatalf("core dims %dx%dx%d, want 1x2x2 (mode-1 columns merged)", p, q, s)
	}
	if dbtf.TuckerReconstructError(x, res) != 0 {
		t.Fatal("TuckerReconstructError disagrees")
	}
	if !dbtf.TuckerReconstruct(res).Equal(x) {
		t.Fatal("TuckerReconstruct differs from x")
	}
}

func TestFactorizeTuckerValidation(t *testing.T) {
	x := dbtf.NewTensor(4, 4, 4)
	if _, err := dbtf.FactorizeTucker(context.Background(), x, dbtf.TuckerOptions{CPRank: 0}); err == nil {
		t.Fatal("CPRank 0 accepted")
	}
}

func TestFactorizeTuckerNeverWorseThanCP(t *testing.T) {
	var coords []dbtf.Coord
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for k := 0; k < 4; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
	}
	x, err := dbtf.TensorFromCoords(12, 12, 12, coords)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbtf.FactorizeTucker(context.Background(), x, dbtf.TuckerOptions{
		CPRank: 3, Machines: 2, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > res.CPError {
		t.Fatalf("Tucker %d worse than CP %d", res.Error, res.CPError)
	}
}
