package dbtf_test

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dbtf/internal/transport"
)

// TestWorkerSIGTERMGracefulExit sends a real SIGTERM to a dbtf-worker OS
// process with a handshaked coordinator connection open and asserts the
// graceful-drain contract: the worker announces the drain, closes the
// idle connection, and exits 0 instead of dying on the signal.
func TestWorkerSIGTERMGracefulExit(t *testing.T) {
	cmd := exec.Command(workerBinary(t), "-listen", "127.0.0.1:0", "-q", "-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	reaped := false
	t.Cleanup(func() {
		if !reaped {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	readLine := func(what string) string {
		t.Helper()
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("worker stdout closed while waiting for %s", what)
			}
			return line
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
		}
		return ""
	}

	const addrPrefix = "dbtf-worker listening on "
	addrLine := readLine("the address line")
	if !strings.HasPrefix(addrLine, addrPrefix) {
		t.Fatalf("worker printed %q, want %q address line", addrLine, addrPrefix)
	}
	addr := strings.TrimPrefix(addrLine, addrPrefix)

	// A handshaked but idle coordinator connection, as a real run between
	// stages would hold.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	hello := &transport.Msg{Type: transport.MsgHello, Proto: transport.ProtoVersion, Machine: 0, Machines: 1}
	if _, err := transport.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	resp, _, err := transport.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != transport.MsgHelloOK {
		t.Fatalf("handshake reply type %d, want hello-ok", resp.Type)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if line := readLine("the drain announcement"); !strings.Contains(line, "draining") {
		t.Fatalf("worker printed %q after SIGTERM, want a draining line", line)
	}

	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()
	select {
	case err := <-waitDone:
		reaped = true
		if err != nil {
			t.Fatalf("worker exited with %v after SIGTERM, want exit 0", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker did not exit within 15s of SIGTERM")
	}

	// The drain closed the idle connection from the server side.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := transport.ReadFrame(conn, 0); err == nil {
		t.Fatal("connection still delivering frames after the worker drained")
	}
}
