// Knowledge-base concept discovery: factorize a NELL-like
// (subject, relation, object) tensor and read the components as latent
// concepts — the application the paper's introduction motivates with
// "Seoul - is the capital of - South Korea" triples.
//
// Each Boolean component is a triple-cluster: a set of subject entities,
// a set of relations, and a set of object entities such that (almost)
// every combination appears in the knowledge base. Because factors are
// Boolean, membership is directly readable — no thresholding of real
// values as in normal CP decomposition.
//
// Run with:
//
//	go run ./examples/knowledgebase
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dbtf"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	var kb dbtf.Dataset
	for _, d := range dbtf.StandinDatasets(rng, 0.5) {
		if d.Name == "NELL-S" {
			kb = d
			break
		}
	}
	i, j, k := kb.X.Dims()
	fmt.Printf("knowledge base: %d subjects x %d relations x %d objects, %d triples\n",
		i, j, k, kb.X.NNZ())

	const rank = 8
	res, err := dbtf.Factorize(context.Background(), kb.X, dbtf.Options{
		Rank:        rank,
		Machines:    4,
		InitialSets: 2,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized at rank %d: error %d (relative %.3f), %d iterations\n\n",
		rank, res.Error, res.RelativeError, res.Iterations)

	// Rank concepts by the number of triples they explain on their own.
	type concept struct {
		r        int
		subjects []int
		rels     []int
		objects  []int
		covered  int
	}
	var concepts []concept
	for r := 0; r < rank; r++ {
		c := concept{
			r:        r,
			subjects: res.A.Column(r).Indices(),
			rels:     res.B.Column(r).Indices(),
			objects:  res.C.Column(r).Indices(),
		}
		for _, s := range c.subjects {
			for _, rel := range c.rels {
				for _, o := range c.objects {
					if kb.X.Get(s, rel, o) {
						c.covered++
					}
				}
			}
		}
		concepts = append(concepts, c)
	}
	sort.Slice(concepts, func(a, b int) bool { return concepts[a].covered > concepts[b].covered })

	fmt.Println("discovered latent concepts (largest first):")
	for _, c := range concepts {
		if len(c.subjects) == 0 || len(c.rels) == 0 || len(c.objects) == 0 {
			continue
		}
		vol := len(c.subjects) * len(c.rels) * len(c.objects)
		fmt.Printf("  concept %d: %3d subjects x %2d relations x %3d objects, explains %d triples (block density %.2f)\n",
			c.r, len(c.subjects), len(c.rels), len(c.objects), c.covered, float64(c.covered)/float64(vol))
		fmt.Printf("    relations: %v\n", head(c.rels, 6))
		fmt.Printf("    sample subjects: %v  sample objects: %v\n", head(c.subjects, 6), head(c.objects, 6))
	}

	// Subjects sharing a concept's subject set behave as synonyms /
	// same-type entities: they connect through the same relations to the
	// same objects — the synonym-finding application of the paper.
	if len(concepts) > 0 && len(concepts[0].subjects) >= 2 {
		s := concepts[0].subjects
		fmt.Printf("\nsame-type entities via concept %d: subjects %d and %d share %d relations\n",
			concepts[0].r, s[0], s[1], len(concepts[0].rels))
	}
}

func head(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}
