// Rank selection and Boolean Tucker: choose the decomposition rank by
// minimum description length, then compress the model further with a
// Boolean Tucker core.
//
// The example plants a tensor with 3 disjoint blocks plus noise, lets MDL
// pick the rank without being told it, and then builds a Tucker
// decomposition whose core is smaller than the CP rank when components
// share structure.
//
// Run with:
//
//	go run ./examples/rankselect
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"dbtf"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// Plant 3 disjoint dense blocks and sprinkle noise.
	var coords []dbtf.Coord
	blocks := [][6]int{{0, 10, 0, 10, 0, 10}, {12, 20, 12, 20, 12, 20}, {22, 30, 22, 30, 22, 30}}
	for _, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			for j := b[2]; j < b[3]; j++ {
				for k := b[4]; k < b[5]; k++ {
					coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	for n := 0; n < 60; n++ {
		coords = append(coords, dbtf.Coord{I: rng.Intn(32), J: rng.Intn(32), K: rng.Intn(32)})
	}
	x, err := dbtf.TensorFromCoords(32, 32, 32, coords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: 32x32x32, %d nonzeros, 3 planted blocks + noise\n\n", x.NNZ())

	// MDL rank selection: no rank hint given.
	sel, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{
		Machines: 4, InitialSets: 4, Seed: 1,
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank  description length (bits)")
	for r, bits := range sel.Bits {
		marker := ""
		if r+1 == sel.Rank {
			marker = "  <- selected"
		}
		fmt.Printf("%4d  %.0f%s\n", r+1, bits, marker)
	}
	fmt.Printf("baseline (no model): %.0f bits\n", sel.BaselineBits)
	fmt.Printf("selected rank %d with error %d (relative %.3f)\n\n",
		sel.Rank, sel.Result.Error, sel.Result.RelativeError)

	// Boolean Tucker at the selected rank: on disjoint blocks the core
	// stays superdiagonal-sized; on shared structure it shrinks.
	tk, err := dbtf.FactorizeTucker(context.Background(), x, dbtf.TuckerOptions{
		CPRank: sel.Rank, Machines: 4, InitialSets: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, q, s := tk.Core.Dims()
	fmt.Printf("tucker: core %dx%dx%d (%d ones), error %d (CP error %d)\n",
		p, q, s, tk.Core.NNZ(), tk.Error, tk.CPError)
}
