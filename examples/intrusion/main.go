// Network-intrusion analysis: factorize a CAIDA-DDoS-like
// (source IP, destination IP, time) tensor and read the components as
// attack events — the network-traffic application the paper motivates.
//
// A DDoS attack is a Boolean rank-1 block: many source IPs hitting a few
// destination IPs during a short time window. DBTF surfaces each attack
// as one component whose C-column is the time window, whose B-column is
// the victim set, and whose A-column is the botnet.
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dbtf"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	var trace dbtf.Dataset
	for _, d := range dbtf.StandinDatasets(rng, 0.5) {
		if d.Name == "CAIDA-DDoS-S" {
			trace = d
			break
		}
	}
	srcs, dsts, ticks := trace.X.Dims()
	fmt.Printf("traffic trace: %d sources x %d destinations x %d ticks, %d packets\n",
		srcs, dsts, ticks, trace.X.NNZ())

	const rank = 6
	res, err := dbtf.Factorize(context.Background(), trace.X, dbtf.Options{
		Rank:        rank,
		Machines:    4,
		InitialSets: 4,
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized at rank %d: error %d (relative %.3f)\n\n", rank, res.Error, res.RelativeError)

	type event struct {
		r         int
		attackers int
		victims   []int
		window    []int
		packets   int
	}
	var events []event
	for r := 0; r < rank; r++ {
		e := event{
			r:         r,
			attackers: res.A.Column(r).OnesCount(),
			victims:   res.B.Column(r).Indices(),
			window:    res.C.Column(r).Indices(),
		}
		for _, s := range res.A.Column(r).Indices() {
			for _, d := range e.victims {
				for _, t := range e.window {
					if trace.X.Get(s, d, t) {
						e.packets++
					}
				}
			}
		}
		if e.attackers > 0 && len(e.victims) > 0 && len(e.window) > 0 {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].packets > events[b].packets })

	fmt.Println("detected traffic events (largest first):")
	for _, e := range events {
		kind := "background chatter"
		// An attack signature: many sources focused on few destinations in
		// a short window.
		if e.attackers >= srcs/8 && len(e.victims) <= 4 && len(e.window) <= ticks/2 {
			kind = "DDoS ATTACK"
		}
		fmt.Printf("  component %d [%s]: %d sources -> destinations %v during ticks %v (%d packets)\n",
			e.r, kind, e.attackers, e.victims, window(e.window), e.packets)
	}
}

// window compresses a sorted tick list to a "lo..hi" description.
func window(ts []int) string {
	if len(ts) == 0 {
		return "-"
	}
	return fmt.Sprintf("%d..%d", ts[0], ts[len(ts)-1])
}
