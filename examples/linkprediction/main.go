// Link prediction: factorize a Facebook-like temporal friendship tensor
// (user, user, date) with part of the links held out, then predict the
// held-out links from the Boolean reconstruction — one of the BTF
// applications the paper lists.
//
// A held-out cell (u1, u2, d) is predicted present when the rank-R
// reconstruction covers it. The example reports hit rates on held-out
// positives against an equal number of random negatives.
//
// Run with:
//
//	go run ./examples/linkprediction
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"dbtf"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	var fb dbtf.Dataset
	for _, d := range dbtf.StandinDatasets(rng, 0.5) {
		if d.Name == "Facebook" {
			fb = d
			break
		}
	}
	users, _, days := fb.X.Dims()
	fmt.Printf("friendship tensor: %d users x %d users x %d days, %d links\n",
		users, users, days, fb.X.NNZ())

	// Hold out 10% of the links as the test set.
	coords := fb.X.Coords()
	perm := rng.Perm(len(coords))
	nTest := len(coords) / 10
	test := make(map[dbtf.Coord]struct{}, nTest)
	var train []dbtf.Coord
	for i, p := range perm {
		if i < nTest {
			test[coords[p]] = struct{}{}
		} else {
			train = append(train, coords[p])
		}
	}
	trainX, err := dbtf.TensorFromCoords(users, users, days, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %d links, testing on %d held-out links\n", trainX.NNZ(), len(test))

	const rank = 12
	res, err := dbtf.Factorize(context.Background(), trainX, dbtf.Options{
		Rank:        rank,
		Machines:    4,
		InitialSets: 2,
		Seed:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized at rank %d: training error %d (relative %.3f)\n",
		rank, res.Error, res.RelativeError)

	// Predict: a cell is a predicted link when some component covers it.
	covers := func(c dbtf.Coord) bool {
		for r := 0; r < rank; r++ {
			if res.A.Get(c.I, r) && res.B.Get(c.J, r) && res.C.Get(c.K, r) {
				return true
			}
		}
		return false
	}

	hits := 0
	for c := range test {
		if covers(c) {
			hits++
		}
	}
	falseAlarms := 0
	negatives := 0
	for negatives < len(test) {
		c := dbtf.Coord{I: rng.Intn(users), J: rng.Intn(users), K: rng.Intn(days)}
		if fb.X.Get(c.I, c.J, c.K) {
			continue
		}
		negatives++
		if covers(c) {
			falseAlarms++
		}
	}

	tpr := float64(hits) / float64(len(test))
	fpr := float64(falseAlarms) / float64(negatives)
	fmt.Printf("held-out positives predicted: %d/%d (%.1f%%)\n", hits, len(test), tpr*100)
	fmt.Printf("random negatives predicted:  %d/%d (%.1f%%)\n", falseAlarms, negatives, fpr*100)
	switch {
	case tpr > fpr && fpr == 0:
		fmt.Println("all predictions are true links (no false alarms)")
	case tpr > fpr:
		fmt.Printf("lift over chance: %.1fx\n", tpr/fpr)
	default:
		fmt.Println("no lift over chance at this rank/scale")
	}
}
