// Quickstart: factorize a small synthetic Boolean tensor with DBTF and
// inspect the recovered components.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"dbtf"
)

func main() {
	// Plant a rank-3 Boolean structure and add 10% additive plus 5%
	// destructive noise — the generator of the paper's error experiments.
	rng := rand.New(rand.NewSource(42))
	clean, planted := dbtf.TensorFromRandomFactors(rng, 64, 64, 64, 3, 0.15)
	x := dbtf.AddNoise(rng, clean, 0.10, 0.05)
	i, j, k := x.Dims()
	fmt.Printf("input: %dx%dx%d Boolean tensor, %d nonzeros (density %.4f)\n",
		i, j, k, x.NNZ(), x.Density())

	// Factorize with DBTF at the planted rank.
	res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
		Rank:        3,
		Machines:    4,
		InitialSets: 4,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dbtf: %d iterations, reconstruction error %d (relative %.3f)\n",
		res.Iterations, res.Error, res.RelativeError)
	fmt.Printf("recovery vs noise-free truth: %.3f relative error\n",
		dbtf.RelativeError(clean, res.Factors))
	fmt.Printf("component similarity to planted factors: %.2f\n",
		dbtf.FactorSimilarity(res.Factors, planted))

	// Each component r is a Boolean rank-1 block: the index sets where
	// columns r of A, B, C are 1.
	for r := 0; r < 3; r++ {
		ai := res.A.Column(r).OnesCount()
		bi := res.B.Column(r).OnesCount()
		ci := res.C.Column(r).OnesCount()
		fmt.Printf("component %d spans %d x %d x %d indices\n", r, ai, bi, ci)
	}

	fmt.Printf("cluster traffic: shuffled %d B, broadcast %d B, collected %d B\n",
		res.Stats.ShuffledBytes, res.Stats.BroadcastBytes, res.Stats.CollectedBytes)
}
