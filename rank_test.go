package dbtf_test

import (
	"context"
	"math/rand"
	"testing"

	"dbtf"
)

func TestSelectRankFindsPlantedRank(t *testing.T) {
	// Three well-separated planted blocks: MDL must prefer a rank near 3
	// over both underfitting (1) and overfitting (8).
	var coords []dbtf.Coord
	blocks := [][6]int{{0, 8, 0, 8, 0, 8}, {10, 17, 10, 17, 10, 17}, {20, 26, 20, 26, 20, 26}}
	for _, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			for j := b[2]; j < b[3]; j++ {
				for k := b[4]; k < b[5]; k++ {
					coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
				}
			}
		}
	}
	x, err := dbtf.TensorFromCoords(28, 28, 28, coords)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{
		Machines: 2, InitialSets: 4, Seed: 1,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rank != 3 {
		t.Fatalf("selected rank %d, want 3 (bits: %v)", sel.Rank, sel.Bits)
	}
	if sel.Result == nil || sel.Result.Error != 0 {
		t.Fatalf("selected factorization not exact: %+v", sel.Result)
	}
	if sel.Bits[sel.Rank-1] >= sel.BaselineBits {
		t.Fatal("selected model does not beat the baseline")
	}
}

func TestSelectRankValidation(t *testing.T) {
	x := dbtf.NewTensor(4, 4, 4)
	if _, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{}, 0); err == nil {
		t.Fatal("maxRank 0 accepted")
	}
	if _, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{}, dbtf.MaxRank+1); err == nil {
		t.Fatal("maxRank > MaxRank accepted")
	}
}

func TestSelectRankStopsEarly(t *testing.T) {
	// A single block: rank 1 is optimal; the search must not try all 16
	// ranks (it stops after two consecutive non-improvements).
	var coords []dbtf.Coord
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				coords = append(coords, dbtf.Coord{I: i, J: j, K: k})
			}
		}
	}
	x, err := dbtf.TensorFromCoords(10, 10, 10, coords)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := dbtf.SelectRank(context.Background(), x, dbtf.Options{Machines: 2, InitialSets: 2, Seed: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rank != 1 {
		t.Fatalf("selected rank %d, want 1", sel.Rank)
	}
	if len(sel.Bits) >= 16 {
		t.Fatalf("search tried %d ranks without stopping early", len(sel.Bits))
	}
}

func TestDescriptionLengthOrdersModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, planted := dbtf.TensorFromRandomFactors(rng, 20, 20, 20, 2, 0.3)
	zero := dbtf.Factors{
		A: planted.A.Clone(), B: planted.B.Clone(), C: planted.C.Clone(),
	}
	for i := 0; i < 20; i++ {
		zero.A.SetRowMask(i, 0)
	}
	good := dbtf.DescriptionLength(x, planted)
	bad := dbtf.DescriptionLength(x, zero)
	if good >= bad {
		t.Fatalf("exact factors cost %v bits >= broken factors %v", good, bad)
	}
	if dbtf.BaselineDescriptionLength(x) <= good {
		t.Fatal("baseline cheaper than exact structured model")
	}
}
