package dbtf_test

import (
	"context"
	"math/rand"
	"testing"

	"dbtf"
)

// TestPropErrorMatchesReconstruction is the package's core correctness
// property: across random small tensors and seeds, the error reported by
// the distributed decomposition equals |X ⊕ reconstruct(A,B,C)| recomputed
// independently from the returned factors, and the per-iteration error
// trace is monotonically non-increasing (the greedy column commits never
// make the fit worse).
func TestPropErrorMatchesReconstruction(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		dims := func() int { return 4 + rng.Intn(13) } // 4..16
		i, j, k := dims(), dims(), dims()
		density := 0.05 + rng.Float64()*0.3
		rank := 1 + rng.Intn(4)
		x := dbtf.RandomTensor(rng, i, j, k, density)
		if x.NNZ() == 0 {
			continue
		}
		res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
			Rank: rank, Machines: 2, MaxIter: 6, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d (%dx%dx%d rank %d): %v", seed, i, j, k, rank, err)
		}

		// Independent recomputation: materialize the Boolean reconstruction
		// and count differing cells, bypassing the partitioned error path.
		recomputed := int64(x.XorCount(res.Reconstruct()))
		if res.Error != recomputed {
			t.Errorf("seed %d (%dx%dx%d rank %d): reported error %d, recomputed %d",
				seed, i, j, k, rank, res.Error, recomputed)
		}

		if len(res.IterationErrors) != res.Iterations {
			t.Errorf("seed %d: %d iteration errors for %d iterations",
				seed, len(res.IterationErrors), res.Iterations)
		}
		for it := 1; it < len(res.IterationErrors); it++ {
			if res.IterationErrors[it] > res.IterationErrors[it-1] {
				t.Errorf("seed %d: error increased at iteration %d: %v",
					seed, it+1, res.IterationErrors)
			}
		}
		if last := res.IterationErrors[len(res.IterationErrors)-1]; last != res.Error {
			t.Errorf("seed %d: final iteration error %d != reported error %d",
				seed, last, res.Error)
		}
	}
}

// TestPropRelativeErrorBounded: the greedy update can always fall back to
// the all-zero column, so the fit never gets worse than the empty
// factorization (relative error 1.0).
func TestPropRelativeErrorBounded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := dbtf.RandomTensor(rng, 12, 10, 14, 0.1)
		if x.NNZ() == 0 {
			continue
		}
		res, err := dbtf.Factorize(context.Background(), x, dbtf.Options{
			Rank: 3, Machines: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.RelativeError > 1.0 {
			t.Errorf("seed %d: relative error %v > 1.0", seed, res.RelativeError)
		}
	}
}
